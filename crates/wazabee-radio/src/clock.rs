//! Virtual time for network simulations: a microsecond clock and an event
//! queue with stable ordering.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(pub u64);

impl Instant {
    /// Adds a duration in microseconds.
    pub fn plus_us(self, us: u64) -> Instant {
        Instant(self.0 + us)
    }

    /// Adds a duration in milliseconds.
    pub fn plus_ms(self, ms: u64) -> Instant {
        Instant(self.0 + ms * 1_000)
    }

    /// Microseconds since simulation start.
    pub fn as_us(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Instant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={}µs", self.0)
    }
}

/// A deterministic event queue: events fire in time order, ties broken by
/// insertion order.
///
/// # Examples
///
/// ```
/// use wazabee_radio::clock::{EventQueue, Instant};
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(Instant(20), "b");
/// q.schedule(Instant(10), "a");
/// assert_eq!(q.pop(), Some((Instant(10), "a")));
/// assert_eq!(q.pop(), Some((Instant(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Instant, u64, usize)>>,
    /// Slot storage. A popped event's slot is pushed onto `free` and reused
    /// by a later `schedule`, so a steady schedule/pop loop runs in bounded
    /// memory instead of growing one dead slot per event.
    events: Vec<Option<E>>,
    /// Indexes into `events` whose slots are vacant.
    free: Vec<usize>,
    /// Live (scheduled, not yet popped) event count.
    live: usize,
    counter: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            live: 0,
            counter: 0,
        }
    }

    /// Schedules `event` to fire at `when`.
    pub fn schedule(&mut self, when: Instant, event: E) {
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.events[slot].is_none(), "free slot not vacant");
                self.events[slot] = Some(event);
                slot
            }
            None => {
                self.events.push(Some(event));
                self.events.len() - 1
            }
        };
        self.heap.push(Reverse((when, self.counter, slot)));
        self.counter += 1;
        self.live += 1;
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        while let Some(Reverse((when, _, slot))) = self.heap.pop() {
            if let Some(event) = self.events[slot].take() {
                self.free.push(slot);
                self.live -= 1;
                return Some((when, event));
            }
        }
        None
    }

    /// Time of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse((when, _, _))| *when)
    }

    /// Number of pending events (O(1)).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots the queue has ever allocated — its storage high-water
    /// mark. Bounded by the maximum number of *simultaneously* pending
    /// events, not by the total scheduled over the queue's lifetime.
    pub fn slot_capacity(&self) -> usize {
        self.events.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant(30), 3);
        q.schedule(Instant(10), 1);
        q.schedule(Instant(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant(5), "first");
        q.schedule(Instant(5), "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Instant(7), ());
        assert_eq!(q.peek_time(), Some(Instant(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn instant_arithmetic() {
        let t = Instant(0).plus_ms(2).plus_us(5);
        assert_eq!(t.as_us(), 2005);
        assert_eq!(format!("{t}"), "t=2005µs");
    }

    #[test]
    fn slot_reuse_keeps_capacity_bounded() {
        // Regression: popped slots used to stay dead forever, so a long
        // simulation's queue grew one slot per event and `len()` was an O(n)
        // scan over the graveyard.
        let mut q = EventQueue::new();
        for round in 0u64..10_000 {
            q.schedule(Instant(round), round);
            q.schedule(Instant(round + 1), round);
            assert_eq!(q.len(), 2);
            let (_, first) = q.pop().unwrap();
            assert_eq!(first, round);
            q.pop().unwrap();
            assert!(q.is_empty());
            assert!(
                q.slot_capacity() <= 2,
                "capacity grew to {} after {} rounds",
                q.slot_capacity(),
                round
            );
        }
    }

    #[test]
    fn len_counts_only_live_events() {
        let mut q = EventQueue::new();
        for k in 0..100 {
            q.schedule(Instant(k), k);
        }
        assert_eq!(q.len(), 100);
        for k in 0..60 {
            q.pop();
            assert_eq!(q.len(), 100 - k - 1);
        }
        assert!(!q.is_empty());
        // Refill reuses the 60 vacated slots before allocating new ones.
        for k in 0..60 {
            q.schedule(Instant(1000 + k), k);
        }
        assert_eq!(q.len(), 100);
        assert_eq!(q.slot_capacity(), 100);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Model check of the ordering contract the sharded simulator's
        /// committed event log rests on: every pop returns the pending event
        /// that is earliest by time, ties broken strictly by insertion order
        /// (FIFO). The interleaved pops make the free list hand late events
        /// *low* slot indexes, so this fails if the heap key ever lets the
        /// slot component outrank the insertion counter.
        #[test]
        fn pop_order_is_time_then_fifo_under_slot_reuse(
            ops in proptest::collection::vec(0u64..12, 1..200)
        ) {
            let mut q = EventQueue::new();
            // Reference model: the pending set as (time, insertion seq);
            // lexicographic min is exactly "time order, ties FIFO".
            let mut pending: Vec<(Instant, u64)> = Vec::new();
            for (seq, op) in ops.into_iter().enumerate() {
                let seq = seq as u64;
                // Each op packs (timestamp in 0..4, pops in 0..3); four
                // timestamps over hundreds of events force heavy ties.
                let (t, pops) = (op % 4, (op / 4) as usize);
                q.schedule(Instant(t), seq);
                pending.push((Instant(t), seq));
                for _ in 0..pops {
                    let got = q.pop();
                    match pending.iter().copied().min() {
                        Some(want) => {
                            proptest::prop_assert_eq!(got, Some(want));
                            pending.retain(|&e| e != want);
                        }
                        None => proptest::prop_assert_eq!(got, None),
                    }
                }
            }
            pending.sort();
            for want in pending {
                proptest::prop_assert_eq!(q.pop(), Some(want));
            }
            proptest::prop_assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant(10), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(Instant(5), 2);
        q.schedule(Instant(50), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        q.schedule(Instant(20), 4);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop(), None);
    }
}
