#![warn(missing_docs)]

//! # wazabee-radio
//!
//! The simulated 2.4 GHz ISM medium of the WazaBee reproduction (Cayre et
//! al., DSN 2021).
//!
//! The paper's benchmarks ran over 3 metres of office air shared with WiFi;
//! this crate substitutes a deterministic channel model:
//!
//! * [`medium`] — point-to-point IQ delivery with spectral shifting, path
//!   gain, CFO, timing offset, random lead-in and AWGN,
//! * [`wifi`] — the bursty WiFi interference responsible for the Table III
//!   reception dips on Zigbee channels 17/18 and 21–23,
//! * [`clock`] — virtual time and a deterministic event queue for the
//!   network-level simulations of the attack scenarios.
//!
//! ## Example
//!
//! ```
//! use wazabee_dsp::{Iq, Nco};
//! use wazabee_radio::{Link, LinkConfig, RfFrame};
//!
//! // Deliver a tone transmitted at 2420 MHz to a receiver on the same
//! // channel over the paper's office link.
//! let fs = 16.0e6;
//! let mut nco = Nco::new(0.1e6, fs);
//! let tx: Vec<Iq> = (0..1024).map(|_| nco.next_sample()).collect();
//! let mut link = Link::new(LinkConfig::office_3m(), 42);
//! let rx = link.deliver(&RfFrame::new(2420, tx, fs), 2420);
//! assert!(rx.len() >= 1024);
//! ```

pub mod clock;
pub mod medium;
pub mod wifi;

pub use clock::{EventQueue, Instant};
pub use medium::{combine_at, combine_at_planar, Link, LinkConfig, RfFrame};
pub use wifi::{WifiChannel, WifiInterferer};
