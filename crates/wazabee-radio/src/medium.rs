//! The simulated radio link: what a receiver tuned to one frequency observes
//! when a transmitter emits at another.
//!
//! The model applies, in order: spectral shift by the centre-frequency
//! difference, path gain, carrier-frequency offset, fractional-sample timing
//! offset, a random lead-in/lead-out of noise (so synchronisation is never
//! trivially aligned), thermal AWGN, and optional WiFi interference bursts.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wazabee_dsp::iq::Iq;
use wazabee_dsp::osc::frequency_shift;
use wazabee_dsp::resample::fractional_delay;
use wazabee_dsp::AwgnSource;

use crate::wifi::WifiInterferer;

/// An RF emission: a baseband waveform bound to its carrier frequency.
#[derive(Debug, Clone)]
pub struct RfFrame {
    /// Carrier centre frequency in MHz.
    pub center_mhz: u32,
    /// Complex baseband samples around that centre.
    pub samples: Vec<Iq>,
    /// Sample rate in samples per second.
    pub sample_rate: f64,
}

impl RfFrame {
    /// Creates an emission.
    pub fn new(center_mhz: u32, samples: Vec<Iq>, sample_rate: f64) -> Self {
        RfFrame {
            center_mhz,
            samples,
            sample_rate,
        }
    }
}

/// Configuration of one point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Signal-to-noise ratio at the receiver, in dB (`None` = noiseless).
    pub snr_db: Option<f64>,
    /// Linear path gain applied to the signal (1.0 = unit).
    pub path_gain: f64,
    /// Residual carrier-frequency offset between TX and RX, in Hz.
    pub cfo_hz: f64,
    /// Fractional-sample timing offset in `[0, 1)`.
    pub timing_offset: f64,
    /// Noise samples prepended before the frame (randomised up to this
    /// bound) so receivers must really synchronise.
    pub max_lead_in: usize,
    /// Noise samples appended after the frame.
    pub lead_out: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            snr_db: Some(25.0),
            path_gain: 1.0,
            cfo_hz: 0.0,
            timing_offset: 0.0,
            max_lead_in: 256,
            lead_out: 64,
        }
    }
}

impl LinkConfig {
    /// A perfectly clean, perfectly aligned link (unit gain, no noise, no
    /// lead-in) — useful in unit tests.
    pub fn ideal() -> Self {
        LinkConfig {
            snr_db: None,
            path_gain: 1.0,
            cfo_hz: 0.0,
            timing_offset: 0.0,
            max_lead_in: 0,
            lead_out: 0,
        }
    }

    /// The indoor 3-metre office link of the paper's benchmarks: high SNR
    /// with modest impairments.
    pub fn office_3m() -> Self {
        LinkConfig {
            snr_db: Some(22.0),
            path_gain: 1.0,
            cfo_hz: 8.0e3,
            timing_offset: 0.37,
            max_lead_in: 512,
            lead_out: 128,
        }
    }
}

/// A point-to-point radio link with deterministic randomness.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    interferers: Vec<WifiInterferer>,
    rng: ChaCha8Rng,
}

impl Link {
    /// Creates a link; `seed` fixes every random draw the link makes.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            config,
            interferers: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Adds a WiFi interferer sharing the air with this link.
    pub fn add_interferer(&mut self, interferer: WifiInterferer) -> &mut Self {
        self.interferers.push(interferer);
        self
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Delivers `frame` to a receiver tuned to `rx_center_mhz`, producing the
    /// sample buffer the receiver's demodulator sees.
    pub fn deliver(&mut self, frame: &RfFrame, rx_center_mhz: u32) -> Vec<Iq> {
        let _t = wazabee_telemetry::timed_scope!("radio.medium.deliver_ns");
        wazabee_telemetry::counter!("radio.medium.deliveries").inc();
        let cfg = self.config;
        wazabee_telemetry::value_histogram!("radio.medium.cfo_hz", 0.0, 64.0e3)
            .record(cfg.cfo_hz.abs());
        // 1. Spectral shift by the TX/RX centre difference plus CFO.
        let delta_hz =
            (f64::from(frame.center_mhz) - f64::from(rx_center_mhz)) * 1.0e6 + cfg.cfo_hz;
        let mut signal = if delta_hz == 0.0 {
            frame.samples.clone()
        } else {
            frequency_shift(&frame.samples, delta_hz, frame.sample_rate)
        };
        // 2. Path gain.
        if cfg.path_gain != 1.0 {
            for s in &mut signal {
                *s = s.scale(cfg.path_gain);
            }
        }
        // 3. Timing offset.
        if cfg.timing_offset != 0.0 {
            signal = fractional_delay(&signal, cfg.timing_offset);
        }
        // 4. Lead-in / lead-out. The bound is inclusive: `max_lead_in` is
        // documented as the upper bound, so a draw of exactly that many
        // samples must be possible.
        let lead_in = if cfg.max_lead_in > 0 {
            self.rng.gen_range(0..=cfg.max_lead_in)
        } else {
            0
        };
        wazabee_telemetry::value_histogram!("radio.medium.lead_in", 0.0, 1024.0)
            .record(lead_in as f64);
        let mut buf = vec![Iq::ZERO; lead_in];
        buf.extend(signal);
        buf.extend(std::iter::repeat_n(Iq::ZERO, cfg.lead_out));
        // 5. Thermal noise over the whole observation window.
        if let Some(snr) = cfg.snr_db {
            let signal_power = cfg.path_gain * cfg.path_gain;
            AwgnSource::from_snr_db(self.rng.gen(), snr, signal_power).add_to(&mut buf);
        }
        // 6. WiFi interference bursts.
        for k in 0..self.interferers.len() {
            let i = self.interferers[k];
            let in_band = i.power_into(rx_center_mhz);
            if in_band <= 0.0 || buf.is_empty() {
                continue;
            }
            if self.rng.gen::<f64>() < i.burst_probability {
                wazabee_telemetry::counter!("radio.medium.wifi_bursts").inc();
                let burst_len = ((buf.len() as f64) * i.burst_fraction).round().max(1.0) as usize;
                let burst_len = burst_len.min(buf.len());
                let start = self.rng.gen_range(0..=buf.len() - burst_len);
                let sigma = (in_band / 2.0).sqrt();
                let mut burst = AwgnSource::new(self.rng.gen(), sigma);
                burst.add_to(&mut buf[start..start + burst_len]);
            }
        }
        wazabee_telemetry::counter!("radio.medium.samples").add(buf.len() as u64);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wifi::WifiChannel;
    use wazabee_dsp::iq::mean_power;
    use wazabee_dsp::Nco;

    fn tone_frame(center: u32, n: usize, fs: f64) -> RfFrame {
        let mut nco = Nco::new(0.25e6, fs);
        RfFrame::new(center, (0..n).map(|_| nco.next_sample()).collect(), fs)
    }

    #[test]
    fn ideal_link_is_transparent() {
        let frame = tone_frame(2420, 512, 16.0e6);
        let mut link = Link::new(LinkConfig::ideal(), 1);
        let rx = link.deliver(&frame, 2420);
        assert_eq!(rx.len(), 512);
        for (a, b) in rx.iter().zip(&frame.samples) {
            assert!((*a - *b).amplitude() < 1e-12);
        }
    }

    #[test]
    fn co_channel_delivery_preserves_tone() {
        let fs = 16.0e6;
        let frame = tone_frame(2420, 2048, fs);
        let cfg = LinkConfig {
            snr_db: Some(30.0),
            ..LinkConfig::default()
        };
        let mut link = Link::new(cfg, 2);
        let rx = link.deliver(&frame, 2420);
        // The tone should dominate: total power ≈ signal power (1.0) + noise.
        let p = mean_power(&rx[256..1536]);
        assert!((0.5..2.0).contains(&p), "power {p}");
    }

    #[test]
    fn off_channel_delivery_shifts_spectrum() {
        let fs = 16.0e6;
        let frame = tone_frame(2422, 1024, fs);
        let mut link = Link::new(LinkConfig::ideal(), 3);
        let rx = link.deliver(&frame, 2420);
        // Tone originally at +0.25 MHz now sits at +2.25 MHz.
        let f = wazabee_dsp::discriminator::discriminate(&rx);
        let mean_step = f.iter().sum::<f64>() / f.len() as f64;
        let expect = std::f64::consts::TAU * 2.25e6 / fs;
        assert!(
            (mean_step - expect).abs() < 0.01 * expect,
            "step {mean_step}"
        );
    }

    #[test]
    fn lead_in_is_randomised_but_bounded() {
        let frame = tone_frame(2420, 64, 16.0e6);
        let mut cfg = LinkConfig::ideal();
        cfg.max_lead_in = 100;
        cfg.lead_out = 10;
        let mut link = Link::new(cfg, 4);
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..16 {
            let rx = link.deliver(&frame, 2420);
            assert!(rx.len() >= 74 && rx.len() <= 174);
            lengths.insert(rx.len());
        }
        assert!(lengths.len() > 4, "lead-in not randomised");
    }

    #[test]
    fn lead_in_bound_is_inclusive() {
        // Regression: `max_lead_in = 1` used to draw from `0..1`, which is
        // always 0 — the documented upper bound was unreachable.
        let frame = tone_frame(2420, 64, 16.0e6);
        let mut cfg = LinkConfig::ideal();
        cfg.max_lead_in = 1;
        let mut link = Link::new(cfg, 11);
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..64 {
            lengths.insert(link.deliver(&frame, 2420).len());
        }
        assert!(lengths.contains(&64), "lead-in of 0 never drawn");
        assert!(lengths.contains(&65), "lead-in of max_lead_in never drawn");
    }

    #[test]
    fn same_seed_same_delivery() {
        let frame = tone_frame(2420, 256, 16.0e6);
        let mut a = Link::new(LinkConfig::office_3m(), 7);
        let mut b = Link::new(LinkConfig::office_3m(), 7);
        assert_eq!(a.deliver(&frame, 2420), b.deliver(&frame, 2420));
    }

    #[test]
    fn interferer_raises_power_only_on_overlap() {
        let frame = tone_frame(2460, 4096, 16.0e6);
        let interferer = WifiInterferer {
            channel: WifiChannel::new(11).unwrap(),
            power: 4.0,
            burst_probability: 1.0,
            burst_fraction: 1.0,
        };
        let mut cfg = LinkConfig::ideal();
        cfg.max_lead_in = 0;
        // Victim on 2460 (inside WiFi 11).
        let mut hit = Link::new(cfg, 8);
        hit.add_interferer(interferer);
        let p_hit = mean_power(&hit.deliver(&frame, 2460));
        // Victim on 2420 (clear).
        let clear_frame = tone_frame(2420, 4096, 16.0e6);
        let mut clear = Link::new(cfg, 8);
        clear.add_interferer(interferer);
        let p_clear = mean_power(&clear.deliver(&clear_frame, 2420));
        assert!(p_hit > p_clear + 2.0, "hit {p_hit} vs clear {p_clear}");
    }

    #[test]
    fn path_gain_scales_amplitude() {
        let frame = tone_frame(2420, 128, 16.0e6);
        let mut cfg = LinkConfig::ideal();
        cfg.path_gain = 0.5;
        let mut link = Link::new(cfg, 9);
        let rx = link.deliver(&frame, 2420);
        assert!((mean_power(&rx) - 0.25).abs() < 1e-9);
    }
}

/// Sums transmission `b` into `a` starting at sample `offset` (zero-padding
/// `a` if needed), modelling two emitters keying up on the same frequency —
/// the collision case a CSMA-less injector provokes.
pub fn combine_at(a: &mut Vec<Iq>, b: &[Iq], offset: usize) {
    if a.len() < offset + b.len() {
        a.resize(offset + b.len(), Iq::ZERO);
    }
    for (k, &s) in b.iter().enumerate() {
        a[offset + k] += s;
    }
}

/// Planar form of [`combine_at`]: sums an interleaved `f64` transmission into
/// a planar `f32` accumulator at `offset` through the explicit-width SIMD
/// kernel, optionally scaled by a path gain.
///
/// This is the superposition primitive of the spectrum simulator's receive
/// path, where the accumulated waveform goes straight to the planar
/// demodulation engine and never needs re-interleaving.
pub fn combine_at_planar(a: &mut wazabee_dsp::IqBuf, b: &[Iq], offset: usize, gain: f64) {
    wazabee_dsp::simd::accumulate_interleaved_at(a, b, offset, gain);
}

#[cfg(test)]
mod collision_tests {
    use super::*;
    use wazabee_dsp::iq::mean_power;

    #[test]
    fn combine_extends_and_sums() {
        let mut a = vec![Iq::ONE; 4];
        combine_at(&mut a, &[Iq::ONE; 4], 2);
        assert_eq!(a.len(), 6);
        assert_eq!(a[1], Iq::ONE);
        assert_eq!(a[2], Iq::new(2.0, 0.0));
        assert_eq!(a[5], Iq::ONE);
    }

    #[test]
    fn combine_at_planar_tracks_interleaved() {
        let mut a = vec![Iq::new(0.25, -0.5); 6];
        let b = vec![Iq::new(1.0, 2.0); 4];
        let mut planar = wazabee_dsp::IqBuf::from_interleaved(&a);
        combine_at(&mut a, &b, 3);
        combine_at_planar(&mut planar, &b, 3, 1.0);
        assert_eq!(planar.len(), a.len());
        for (k, s) in a.iter().enumerate() {
            let (pi, pq) = planar.get(k);
            assert!((f64::from(pi) - s.i).abs() < 1e-6);
            assert!((f64::from(pq) - s.q).abs() < 1e-6);
        }
        // Gain scales the added member only.
        let mut g = wazabee_dsp::IqBuf::new();
        combine_at_planar(&mut g, &b, 0, 0.5);
        assert_eq!(g.get(0), (0.5, 1.0));
    }

    #[test]
    fn combine_at_zero_offset_is_elementwise_sum() {
        let mut a = vec![Iq::new(0.5, -0.5); 3];
        combine_at(&mut a, &[Iq::new(0.5, 0.5); 3], 0);
        for s in &a {
            assert_eq!(*s, Iq::new(1.0, 0.0));
        }
    }

    #[test]
    fn overlapping_equal_power_signals_double_mean_power() {
        use wazabee_dsp::Nco;
        let fs = 16.0e6;
        let mut t1 = Nco::new(0.3e6, fs);
        let mut t2 = Nco::new(-0.7e6, fs);
        let mut a: Vec<Iq> = (0..4096).map(|_| t1.next_sample()).collect();
        let b: Vec<Iq> = (0..4096).map(|_| t2.next_sample()).collect();
        combine_at(&mut a, &b, 0);
        let p = mean_power(&a);
        assert!((p - 2.0).abs() < 0.05, "combined power {p}");
    }
}
