//! Scenario B (paper §VI-C): complex Zigbee attacks from a BLE tracker.
//!
//! The Gablys Lite tracker's nRF51822 has no LE 2M PHY, so its WazaBee
//! primitives ride the chip's Enhanced ShockBurst 2 Mbit/s mode instead.
//! The attack has four steps:
//!
//! 1. **Active scanning** — broadcast a beacon request on each channel and
//!    wait for a coordinator's beacon (collect channel, PAN id, address).
//! 2. **Eavesdropping** — sniff legitimate traffic to learn the sensor's
//!    address.
//! 3. **Remote AT command injection** — forge a channel-change command from
//!    the coordinator to the sensor, knocking it off the network (DoS).
//! 4. **Fake data injection** — impersonate the silenced sensor.
//!
//! Every frame the attacker sends or hears crosses the IQ-sample medium: the
//! tracker's ESB modem on one side, a standards 802.15.4 modem (the XBee
//! radios) on the other.

use wazabee_dot154::mac::{Address, FrameType, MacFrame};
use wazabee_dot154::{Dot154Channel, Dot154Modem, Ppdu};
use wazabee_esb::EsbModem;
use wazabee_radio::{Link, RfFrame};
use wazabee_zigbee::{AtCommand, XbeePayload, ZigbeeNetwork};

use crate::error::WazaBeeError;
use crate::rx::WazaBeeRx;
use crate::tx::WazaBeeTx;

/// What active scanning learned about the victim network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscoveredPan {
    /// Channel the beacon was heard on.
    pub channel: Dot154Channel,
    /// The network's PAN identifier.
    pub pan: u16,
    /// The coordinator's short address.
    pub coordinator: u16,
}

/// The attack's progress report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackReport {
    /// Step 1 result.
    pub discovered: Option<DiscoveredPan>,
    /// Step 2 result: the sensor's short address.
    pub sensor: Option<u16>,
    /// Step 3: the AT response proving the channel change was executed.
    pub dos_acknowledged: bool,
    /// Step 4: spoofed readings the coordinator accepted.
    pub fake_readings_accepted: usize,
}

impl AttackReport {
    /// True when all four steps completed.
    pub fn complete(&self) -> bool {
        self.discovered.is_some()
            && self.sensor.is_some()
            && self.dos_acknowledged
            && self.fake_readings_accepted > 0
    }
}

/// The diverted tracker: WazaBee primitives over the nRF51822's ESB radio.
#[derive(Debug)]
pub struct TrackerAttack {
    tx: WazaBeeTx<EsbModem>,
    rx: WazaBeeRx<EsbModem>,
    xbee_radio: Dot154Modem,
    seq: u8,
    /// Channel the sensor gets exiled to in step 3.
    pub dos_channel: Dot154Channel,
}

impl TrackerAttack {
    /// Prepares the attack at the given oversampling factor.
    ///
    /// # Errors
    ///
    /// Propagates [`WazaBeeError::UnsupportedDataRate`] if the ESB radio is
    /// misconfigured (cannot happen with the stock 2 Mbit/s modem).
    pub fn new(samples_per_symbol: usize) -> Result<Self, WazaBeeError> {
        Ok(TrackerAttack {
            tx: WazaBeeTx::new(EsbModem::new(samples_per_symbol))?,
            rx: WazaBeeRx::new(EsbModem::new(samples_per_symbol))?,
            xbee_radio: Dot154Modem::new(samples_per_symbol),
            seq: 0x80,
            dos_channel: Dot154Channel::new(25).expect("channel 25"),
        })
    }

    fn next_seq(&mut self) -> u8 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// Transmits a MAC frame through the full PHY path: ESB WazaBee TX →
    /// medium → XBee 802.15.4 receiver → (if the FCS survived) the network.
    fn phy_inject(
        &mut self,
        net: &mut ZigbeeNetwork,
        link: &mut Link,
        channel: Dot154Channel,
        frame: &MacFrame,
    ) -> bool {
        let Ok(ppdu) = Ppdu::new(frame.to_psdu()) else {
            return false;
        };
        wazabee_telemetry::counter!("scenario_b.frames_tx").inc();
        let air = self.tx.transmit(&ppdu);
        let rf = RfFrame::new(channel.center_mhz(), air, self.xbee_radio.sample_rate());
        let heard = link.deliver(&rf, channel.center_mhz());
        match self.xbee_radio.receive(&heard) {
            Some(rx) if rx.fcs_ok() => {
                wazabee_telemetry::counter!("scenario_b.frames_ok").inc();
                net.inject(channel, rx.psdu);
                true
            }
            _ => false,
        }
    }

    /// Attempts to sniff one PSDU through the PHY path: XBee 802.15.4 TX →
    /// medium → ESB WazaBee RX.
    fn phy_sniff(&self, link: &mut Link, channel: Dot154Channel, psdu: &[u8]) -> Option<MacFrame> {
        let ppdu = Ppdu::new(psdu.to_vec()).ok()?;
        wazabee_telemetry::counter!("scenario_b.sniff.attempts").inc();
        let air = self.xbee_radio.transmit(&ppdu);
        let rf = RfFrame::new(channel.center_mhz(), air, self.xbee_radio.sample_rate());
        let heard = link.deliver(&rf, channel.center_mhz());
        let rx = self.rx.receive(&heard)?;
        if !rx.fcs_ok() {
            return None;
        }
        wazabee_telemetry::counter!("scenario_b.sniff.ok").inc();
        MacFrame::from_psdu(&rx.psdu)
    }

    /// Step 1: active scanning across all sixteen channels.
    pub fn active_scan(
        &mut self,
        net: &mut ZigbeeNetwork,
        link: &mut Link,
    ) -> Option<DiscoveredPan> {
        let _s = wazabee_telemetry::span!("scenario_b.active_scan");
        for channel in Dot154Channel::all() {
            let cursor = net.log().len();
            let seq = self.next_seq();
            if !self.phy_inject(net, link, channel, &MacFrame::beacon_request(seq)) {
                continue;
            }
            let deadline = net.now().plus_ms(50);
            net.run_until(deadline);
            let records: Vec<_> = net
                .log_since(cursor)
                .iter()
                .filter(|r| r.channel == channel && r.source.is_some())
                .cloned()
                .collect();
            for record in records {
                if let Some(frame) = self.phy_sniff(link, channel, &record.psdu) {
                    if frame.frame_type == FrameType::Beacon {
                        if let (Some(pan), Address::Short(coordinator)) = (frame.src_pan, frame.src)
                        {
                            return Some(DiscoveredPan {
                                channel,
                                pan,
                                coordinator,
                            });
                        }
                    }
                }
            }
        }
        None
    }

    /// Step 2: eavesdrop on the discovered channel until a data frame
    /// reveals the sensor's address (or `timeout_ms` elapses).
    pub fn eavesdrop(
        &mut self,
        net: &mut ZigbeeNetwork,
        link: &mut Link,
        pan: DiscoveredPan,
        timeout_ms: u64,
    ) -> Option<u16> {
        let _s = wazabee_telemetry::span!("scenario_b.eavesdrop");
        let deadline = net.now().plus_ms(timeout_ms);
        let mut cursor = net.log().len();
        while net.now() < deadline {
            let step = net.now().plus_ms(250);
            net.run_until(step.min(deadline));
            let records: Vec<_> = net
                .log_since(cursor)
                .iter()
                .filter(|r| r.channel == pan.channel && r.source.is_some())
                .cloned()
                .collect();
            cursor = net.log().len();
            for record in records {
                let Some(frame) = self.phy_sniff(link, pan.channel, &record.psdu) else {
                    continue;
                };
                if frame.frame_type == FrameType::Data && frame.effective_src_pan() == Some(pan.pan)
                {
                    if let Address::Short(src) = frame.src {
                        if src != pan.coordinator {
                            return Some(src);
                        }
                    }
                }
            }
        }
        None
    }

    /// Step 3: forge a remote AT command (spoofing the coordinator) that
    /// moves the sensor to [`TrackerAttack::dos_channel`]; confirm via the
    /// sensor's AT response on the old channel.
    pub fn inject_remote_at(
        &mut self,
        net: &mut ZigbeeNetwork,
        link: &mut Link,
        pan: DiscoveredPan,
        sensor: u16,
    ) -> bool {
        let _s = wazabee_telemetry::span!("scenario_b.inject_remote_at");
        let cursor = net.log().len();
        let payload = XbeePayload::RemoteAtCommand {
            frame_id: 0x42,
            command: AtCommand::Channel(self.dos_channel.number()),
        };
        let seq = self.next_seq();
        let forged = MacFrame::data(pan.pan, pan.coordinator, sensor, seq, payload.to_bytes());
        if !self.phy_inject(net, link, pan.channel, &forged) {
            return false;
        }
        let deadline = net.now().plus_ms(50);
        net.run_until(deadline);
        // The AT response goes out before the channel change takes effect in
        // our node model? No — the node applies the change first, so the
        // response is transmitted on the *new* channel; hear it there.
        for record in net.log_since(cursor).to_vec() {
            if record.source.is_none() {
                continue;
            }
            let Some(frame) = self.phy_sniff(link, record.channel, &record.psdu) else {
                continue;
            };
            if let Some(XbeePayload::RemoteAtResponse {
                frame_id: 0x42,
                status,
            }) = XbeePayload::from_bytes(&frame.payload)
            {
                return status == wazabee_zigbee::AtStatus::Ok;
            }
        }
        false
    }

    /// Step 4: impersonate the silenced sensor with `count` fake readings,
    /// spaced `interval_ms` apart, starting at `first_value` and counting up.
    #[allow(clippy::too_many_arguments)]
    pub fn inject_fake_readings(
        &mut self,
        net: &mut ZigbeeNetwork,
        link: &mut Link,
        pan: DiscoveredPan,
        sensor: u16,
        first_value: u16,
        count: usize,
        interval_ms: u64,
    ) -> usize {
        let _s = wazabee_telemetry::span!("scenario_b.inject_fake_readings");
        let spoofed = |net: &ZigbeeNetwork| {
            net.coordinator()
                .readings()
                .iter()
                .filter(|r| {
                    let delta = r.value.wrapping_sub(first_value);
                    usize::from(delta) < count && r.reported_by == sensor
                })
                .count()
        };
        let before = spoofed(net);
        for k in 0..count {
            let seq = self.next_seq();
            let payload = XbeePayload::reading(first_value.wrapping_add(k as u16));
            let fake = MacFrame::data(pan.pan, sensor, pan.coordinator, seq, payload.to_bytes());
            self.phy_inject(net, link, pan.channel, &fake);
            let deadline = net.now().plus_ms(interval_ms);
            net.run_until(deadline);
        }
        spoofed(net) - before
    }

    /// Runs the full four-step attack.
    pub fn execute(&mut self, net: &mut ZigbeeNetwork, link: &mut Link) -> AttackReport {
        let mut report = AttackReport::default();
        let Some(pan) = self.active_scan(net, link) else {
            return report;
        };
        report.discovered = Some(pan);
        let Some(sensor) = self.eavesdrop(net, link, pan, 8_000) else {
            return report;
        };
        report.sensor = Some(sensor);
        report.dos_acknowledged = self.inject_remote_at(net, link, pan, sensor);
        if report.dos_acknowledged {
            report.fake_readings_accepted =
                self.inject_fake_readings(net, link, pan, sensor, 9_000, 5, 500);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_radio::LinkConfig;

    fn link() -> Link {
        Link::new(LinkConfig::ideal(), 99)
    }

    #[test]
    fn active_scan_finds_the_testbed() {
        let mut net = ZigbeeNetwork::paper_testbed();
        let mut attack = TrackerAttack::new(8).unwrap();
        let pan = attack.active_scan(&mut net, &mut link()).unwrap();
        assert_eq!(pan.pan, 0x1234);
        assert_eq!(pan.coordinator, 0x0042);
        assert_eq!(pan.channel.number(), 14);
    }

    #[test]
    fn eavesdropping_learns_the_sensor_address() {
        let mut net = ZigbeeNetwork::paper_testbed();
        let mut attack = TrackerAttack::new(8).unwrap();
        let mut l = link();
        let pan = attack.active_scan(&mut net, &mut l).unwrap();
        let sensor = attack.eavesdrop(&mut net, &mut l, pan, 8_000).unwrap();
        assert_eq!(sensor, 0x0063);
    }

    #[test]
    fn remote_at_injection_moves_the_sensor() {
        let mut net = ZigbeeNetwork::paper_testbed();
        let mut attack = TrackerAttack::new(8).unwrap();
        let mut l = link();
        let pan = attack.active_scan(&mut net, &mut l).unwrap();
        let ok = attack.inject_remote_at(&mut net, &mut l, pan, 0x0063);
        assert!(ok, "AT response not observed");
        // Simulation ground truth: the sensor really changed channel.
        assert_eq!(net.node(1).config.channel, attack.dos_channel);
    }

    #[test]
    fn full_attack_completes_and_spoofs_the_display() {
        let mut net = ZigbeeNetwork::paper_testbed();
        let mut attack = TrackerAttack::new(8).unwrap();
        let mut l = link();
        let report = attack.execute(&mut net, &mut l);
        assert!(report.complete(), "incomplete: {report:?}");
        assert_eq!(report.fake_readings_accepted, 5);
        // The display's latest readings are the attacker's.
        let readings = net.coordinator().readings();
        let tail: Vec<u16> = readings.iter().rev().take(5).map(|r| r.value).collect();
        assert_eq!(tail, vec![9_004, 9_003, 9_002, 9_001, 9_000]);
        // And the real sensor is gone: it reports on the DoS channel now.
        assert_eq!(net.node(1).config.channel, attack.dos_channel);
    }

    #[test]
    fn scan_fails_on_an_empty_band() {
        let mut net = ZigbeeNetwork::new();
        let mut attack = TrackerAttack::new(8).unwrap();
        assert!(attack.active_scan(&mut net, &mut link()).is_none());
    }
}
