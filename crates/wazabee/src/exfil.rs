//! Covert data exfiltration over the diverted channel.
//!
//! The paper's introduction motivates WazaBee with exactly this use case:
//! *"exfiltrate data to an illegitimate remote receiver by means of a
//! corrupted BLE object, by communicating through a wireless protocol that
//! is not supposed to be monitored in the targeted environment."* This
//! module implements that covert channel: arbitrary data chunked into
//! 802.15.4 data frames transmitted by the WazaBee TX primitive, reassembled
//! by any 802.15.4 receiver (or another diverted BLE chip).

use wazabee_dot154::{MacFrame, Ppdu};

use crate::error::WazaBeeError;

/// Magic byte tagging exfiltration payloads.
const EXFIL_MAGIC: u8 = 0xEF;

/// Maximum data bytes per chunk: a PSDU is at most 127 bytes; the MAC
/// header of our data frames is 9 bytes, the FCS 2, the chunk header 6.
pub const MAX_CHUNK: usize = 110;

/// One exfiltration chunk header + payload, as a MAC payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Stream identifier (distinguishes concurrent exfiltrations).
    pub stream: u8,
    /// Chunk index.
    pub seq: u16,
    /// Total number of chunks in the stream.
    pub total: u16,
    /// The data slice.
    pub data: Vec<u8>,
}

impl Chunk {
    /// Serialises to a MAC payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.data.len());
        out.push(EXFIL_MAGIC);
        out.push(self.stream);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a MAC payload; `None` when it is not an exfiltration chunk.
    pub fn from_bytes(bytes: &[u8]) -> Option<Chunk> {
        if bytes.len() < 6 || bytes[0] != EXFIL_MAGIC {
            return None;
        }
        Some(Chunk {
            stream: bytes[1],
            seq: u16::from_le_bytes([bytes[2], bytes[3]]),
            total: u16::from_le_bytes([bytes[4], bytes[5]]),
            data: bytes[6..].to_vec(),
        })
    }
}

/// Addressing configuration of the covert channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExfilConfig {
    /// PAN id used for the covert frames (can mimic the victim network or
    /// use an unrelated one).
    pub pan: u16,
    /// Source short address claimed by the exfiltrating device.
    pub src: u16,
    /// Destination short address of the attacker's receiver.
    pub dest: u16,
    /// Bytes of data per frame (≤ [`MAX_CHUNK`]).
    pub chunk_size: usize,
}

impl Default for ExfilConfig {
    fn default() -> Self {
        ExfilConfig {
            pan: 0x0E0F,
            src: 0x0001,
            dest: 0xE717,
            chunk_size: 64,
        }
    }
}

/// Splits a byte stream into the PPDUs of one exfiltration stream.
///
/// # Errors
///
/// [`WazaBeeError::FrameTooLong`] when `chunk_size` exceeds [`MAX_CHUNK`] or
/// the data needs more than 65535 chunks.
pub fn exfil_frames(data: &[u8], stream: u8, cfg: &ExfilConfig) -> Result<Vec<Ppdu>, WazaBeeError> {
    if cfg.chunk_size == 0 || cfg.chunk_size > MAX_CHUNK {
        return Err(WazaBeeError::FrameTooLong {
            len: cfg.chunk_size,
            max: MAX_CHUNK,
        });
    }
    let total = data.len().div_ceil(cfg.chunk_size).max(1);
    if total > usize::from(u16::MAX) {
        return Err(WazaBeeError::FrameTooLong {
            len: total,
            max: usize::from(u16::MAX),
        });
    }
    let mut frames = Vec::with_capacity(total);
    for (seq, piece) in data
        .chunks(cfg.chunk_size)
        .chain(std::iter::once([].as_slice()).take(usize::from(data.is_empty())))
        .enumerate()
    {
        let chunk = Chunk {
            stream,
            seq: seq as u16,
            total: total as u16,
            data: piece.to_vec(),
        };
        let mac = MacFrame::data(cfg.pan, cfg.src, cfg.dest, seq as u8, chunk.to_bytes());
        let ppdu = Ppdu::new(mac.to_psdu()).map_err(|p| WazaBeeError::FrameTooLong {
            len: p.len(),
            max: 127,
        })?;
        frames.push(ppdu);
    }
    Ok(frames)
}

/// Reassembles exfiltration streams on the receiver side.
///
/// # Examples
///
/// ```
/// use wazabee::exfil::{exfil_frames, ExfilCollector, ExfilConfig};
/// use wazabee_dot154::MacFrame;
///
/// let cfg = ExfilConfig::default();
/// let frames = exfil_frames(b"secret document", 7, &cfg).unwrap();
/// let mut collector = ExfilCollector::new();
/// let mut recovered = None;
/// for f in &frames {
///     let mac = MacFrame::from_psdu(f.psdu()).unwrap();
///     recovered = collector.ingest(&mac).or(recovered);
/// }
/// assert_eq!(recovered.unwrap(), b"secret document");
/// ```
#[derive(Debug, Default)]
pub struct ExfilCollector {
    streams: std::collections::HashMap<u8, StreamState>,
}

#[derive(Debug)]
struct StreamState {
    total: u16,
    chunks: std::collections::BTreeMap<u16, Vec<u8>>,
}

impl ExfilCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        ExfilCollector::default()
    }

    /// Number of streams currently being reassembled.
    pub fn pending_streams(&self) -> usize {
        self.streams.len()
    }

    /// Progress of a stream: `(received, total)` chunks.
    pub fn progress(&self, stream: u8) -> Option<(usize, usize)> {
        self.streams
            .get(&stream)
            .map(|s| (s.chunks.len(), usize::from(s.total)))
    }

    /// Feeds a received MAC frame; returns the reassembled data when the
    /// frame completes its stream (the stream is then forgotten).
    ///
    /// Chunks with out-of-range metadata (zero total, sequence beyond total,
    /// or data exceeding [`MAX_CHUNK`]) are dropped, which also bounds the
    /// collector's memory to 256 streams × 65535 × [`MAX_CHUNK`] worst case.
    pub fn ingest(&mut self, frame: &MacFrame) -> Option<Vec<u8>> {
        let chunk = Chunk::from_bytes(&frame.payload)?;
        if chunk.total == 0 || chunk.seq >= chunk.total || chunk.data.len() > MAX_CHUNK {
            return None;
        }
        let state = self
            .streams
            .entry(chunk.stream)
            .or_insert_with(|| StreamState {
                total: chunk.total,
                chunks: std::collections::BTreeMap::new(),
            });
        if state.total != chunk.total {
            // Conflicting stream metadata: restart with the new shape.
            state.total = chunk.total;
            state.chunks.clear();
        }
        state.chunks.insert(chunk.seq, chunk.data);
        if state.chunks.len() == usize::from(state.total) {
            let state = self.streams.remove(&chunk.stream).expect("present");
            Some(state.chunks.into_values().flatten().collect())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs(frames: &[Ppdu]) -> Vec<MacFrame> {
        frames
            .iter()
            .map(|f| MacFrame::from_psdu(f.psdu()).expect("valid"))
            .collect()
    }

    #[test]
    fn round_trip_multi_chunk() {
        let data: Vec<u8> = (0..=255).cycle().take(500).collect();
        let cfg = ExfilConfig::default();
        let frames = exfil_frames(&data, 1, &cfg).unwrap();
        assert_eq!(frames.len(), 8); // ceil(500/64)
        let mut collector = ExfilCollector::new();
        let mut out = None;
        for m in macs(&frames) {
            out = collector.ingest(&m).or(out);
        }
        assert_eq!(out.unwrap(), data);
        assert_eq!(collector.pending_streams(), 0);
    }

    #[test]
    fn out_of_order_and_duplicates_tolerated() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let cfg = ExfilConfig {
            chunk_size: 8,
            ..ExfilConfig::default()
        };
        let frames = macs(&exfil_frames(&data, 2, &cfg).unwrap());
        let mut collector = ExfilCollector::new();
        let mut order: Vec<usize> = (0..frames.len()).rev().collect();
        order.push(0); // duplicate
        let mut out = None;
        for &k in &order {
            out = collector.ingest(&frames[k]).or(out);
        }
        assert_eq!(out.unwrap(), data);
    }

    #[test]
    fn missing_chunk_keeps_stream_pending() {
        let data = vec![7u8; 200];
        let cfg = ExfilConfig {
            chunk_size: 50,
            ..ExfilConfig::default()
        };
        let frames = macs(&exfil_frames(&data, 3, &cfg).unwrap());
        let mut collector = ExfilCollector::new();
        for (k, m) in frames.iter().enumerate() {
            if k != 2 {
                assert!(collector.ingest(m).is_none());
            }
        }
        assert_eq!(collector.progress(3), Some((3, 4)));
        // The late chunk completes it.
        assert_eq!(collector.ingest(&frames[2]).unwrap(), data);
    }

    #[test]
    fn concurrent_streams_do_not_mix() {
        let a = vec![0xAA; 100];
        let b = vec![0xBB; 100];
        let cfg = ExfilConfig {
            chunk_size: 40,
            ..ExfilConfig::default()
        };
        let fa = macs(&exfil_frames(&a, 10, &cfg).unwrap());
        let fb = macs(&exfil_frames(&b, 11, &cfg).unwrap());
        let mut collector = ExfilCollector::new();
        let mut results = Vec::new();
        for (x, y) in fa.iter().zip(&fb) {
            if let Some(d) = collector.ingest(x) {
                results.push(d);
            }
            if let Some(d) = collector.ingest(y) {
                results.push(d);
            }
        }
        assert_eq!(results, vec![a, b]);
    }

    #[test]
    fn oversized_chunk_data_dropped() {
        let mut collector = ExfilCollector::new();
        let huge = Chunk {
            stream: 1,
            seq: 0,
            total: 1,
            data: vec![0; MAX_CHUNK + 1],
        };
        let frame = MacFrame::data(1, 2, 3, 4, huge.to_bytes());
        assert!(collector.ingest(&frame).is_none());
        assert_eq!(collector.pending_streams(), 0);
    }

    #[test]
    fn non_exfil_frames_ignored() {
        let mut collector = ExfilCollector::new();
        let plain = MacFrame::data(1, 2, 3, 4, vec![0x01, 0x02]);
        assert!(collector.ingest(&plain).is_none());
        assert_eq!(collector.pending_streams(), 0);
    }

    #[test]
    fn empty_data_is_one_empty_chunk() {
        let frames = macs(&exfil_frames(&[], 5, &ExfilConfig::default()).unwrap());
        assert_eq!(frames.len(), 1);
        let mut collector = ExfilCollector::new();
        assert_eq!(collector.ingest(&frames[0]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_chunk_size_rejected() {
        let cfg = ExfilConfig {
            chunk_size: MAX_CHUNK + 1,
            ..ExfilConfig::default()
        };
        assert!(matches!(
            exfil_frames(&[1], 0, &cfg),
            Err(WazaBeeError::FrameTooLong { .. })
        ));
        let zero = ExfilConfig {
            chunk_size: 0,
            ..ExfilConfig::default()
        };
        assert!(exfil_frames(&[1], 0, &zero).is_err());
    }

    #[test]
    fn max_chunk_fits_in_a_ppdu() {
        let cfg = ExfilConfig {
            chunk_size: MAX_CHUNK,
            ..ExfilConfig::default()
        };
        let frames = exfil_frames(&[9; MAX_CHUNK], 0, &cfg).unwrap();
        assert_eq!(frames.len(), 1);
        assert!(frames[0].psdu().len() <= 127);
    }

    #[test]
    fn full_phy_round_trip() {
        // The covert channel over the air: WazaBee TX → 802.15.4 RX.
        use crate::WazaBeeTx;
        use wazabee_ble::{BleModem, BlePhy};
        use wazabee_dot154::Dot154Modem;

        let secret = b"exfiltrated over a protocol nobody monitors".to_vec();
        let cfg = ExfilConfig {
            chunk_size: 16,
            ..ExfilConfig::default()
        };
        let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let rx = Dot154Modem::new(8);
        let mut collector = ExfilCollector::new();
        let mut out = None;
        for ppdu in exfil_frames(&secret, 9, &cfg).unwrap() {
            let air = tx.transmit(&ppdu);
            let got = rx.receive(&air).expect("frame lost");
            assert!(got.fcs_ok());
            let mac = MacFrame::from_psdu(&got.psdu).unwrap();
            out = collector.ingest(&mac).or(out);
        }
        assert_eq!(out.unwrap(), secret);
    }
}
