//! The streaming reception engine: resync-after-failure over IQ chunks.
//!
//! The one-shot receiver locked onto the first access-address correlator hit
//! and gave up on the whole capture if that attempt failed — a decoy burst, a
//! corrupted preamble, or a reserved PHR early in the window swallowed every
//! genuine frame behind it. [`StreamingRx`] fixes that end to end: it
//! consumes IQ in chunks of any size, keeps one demodulation lane per sample
//! phase with a persistent [`StreamCorrelator`], and after every committed
//! attempt — delivered frame *or* typed failure — re-arms the sync search
//! just past the consumed region and keeps scanning. Results come out in
//! stream order, one `Result` per attempt.
//!
//! Chunking is observationally invisible: feeding the same samples in any
//! chunk sizes yields byte-for-byte the same sequence of frames and typed
//! failures, because demodulation, correlation and despreading all operate
//! on absolute bit indexes carried across chunk boundaries.
//!
//! ## The planar SIMD engine
//!
//! The stage profiler showed the old per-lane demodulation at ~76 % of decode
//! self-time in `dsp.discriminate`: every push re-ran a full `f64` polar
//! discriminator (one libm `atan2` per sample) once per sample-phase lane —
//! `sps`-fold duplicated work, because the discriminator's first differences
//! are *lane-independent*. Lane `o`'s soft bit `b` is just the sum of global
//! differences `diff[o + b·sps .. o + (b+1)·sps]`. The default engine now
//! keeps samples planar ([`wazabee_dsp::IqBuf`]), extends one shared `f32`
//! difference cache incrementally per push (each new sample pair is
//! discriminated exactly once, through the explicit-width SIMD kernel), and
//! gives every lane its hard bits with a windowed-sum kernel — the sums keep
//! the old `1/sps` dump scaling out since `sum ≥ 0` decides the bit either
//! way. [`WazaBeeRx::stream_reference`] still runs the original interleaved
//! `f64` path; the parity tests pin that both engines decode the same frames.

use std::collections::VecDeque;

use wazabee_dot154::modem::ReceivedPpdu;
use wazabee_dsp::correlate::PatternMatch;
use wazabee_dsp::{simd, Iq, IqBuf, PackedBits, StreamCorrelator};
use wazabee_flightrec::{FrameKind, TraceHandle};

use crate::error::WazaBeeError;
use crate::radio::RawFskRadio;
use crate::rx::{estimate_cfo_hz_synced, rx_failure, DecodeOutcome, WazaBeeRx};

/// Once the retained region grows this many bits past the low-water mark,
/// the front of the buffers is released.
const TRIM_THRESHOLD_BITS: usize = 4096;

/// Bits kept behind the low-water mark when trimming, so small bookkeeping
/// differences can never reach back past the buffer start.
const TRIM_SLACK_BITS: usize = 64;

/// One demodulation lane: the bit stream recovered at a fixed sample-phase
/// offset, its always-armed correlator, and the sync hits awaiting decode.
#[derive(Debug, Clone)]
struct Lane {
    /// Demodulated hard bits, trimmed at the front; bit `k` here is absolute
    /// bit `base_bits + k`.
    bits: PackedBits,
    /// Persistent sliding-register correlator (absolute indexes).
    corr: StreamCorrelator,
    /// Pending sync hits at absolute indexes `>= armed`, in stream order.
    matches: VecDeque<PatternMatch>,
}

/// A chunk-fed 802.15.4 receiver over a diverted radio that re-arms after
/// every attempt instead of abandoning the capture on the first failure.
///
/// Feed IQ with [`StreamingRx::push`] (any chunk sizes), then flush with
/// [`StreamingRx::finish`]. Each returned element is one committed decode
/// attempt: `Ok` with a recovered frame, or `Err` with the typed reason that
/// attempt died. Attempts never straddle a flush — a frame cut short by the
/// end of the stream surfaces as [`WazaBeeError::Truncated`] from `finish`.
///
/// # Examples
///
/// ```
/// use wazabee::{WazaBeeRx, WazaBeeTx};
/// use wazabee_ble::{BleModem, BlePhy};
/// use wazabee_dot154::{fcs::append_fcs, Ppdu};
///
/// let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
/// let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
/// let ppdu = Ppdu::new(append_fcs(&[1, 2, 3])).unwrap();
/// let air = tx.transmit(&ppdu);
///
/// let mut stream = rx.stream();
/// let mut results = Vec::new();
/// for chunk in air.chunks(1000) {
///     results.extend(stream.push(chunk));
/// }
/// results.extend(stream.finish());
/// let frame = results.into_iter().find_map(Result::ok).unwrap();
/// assert_eq!(frame.psdu, ppdu.psdu());
/// ```
#[derive(Debug)]
pub struct StreamingRx<'a, R> {
    rx: &'a WazaBeeRx<R>,
    /// Samples per symbol — also the number of demodulation lanes.
    sps: usize,
    /// Sync pattern length in bits (32 for the diverted access address).
    pattern_len: usize,
    /// Retained planar IQ, trimmed at the front in lockstep with the lanes;
    /// sample `i` here is absolute sample `base_bits * sps + i`. Empty when
    /// the reference engine is active.
    samples: IqBuf,
    /// Retained interleaved `f64` IQ for the reference engine; empty when the
    /// planar engine (the default) is active.
    ref_samples: Vec<Iq>,
    /// Shared discriminator first differences: `diffs[k]` is the phase step
    /// between retained samples `k` and `k+1`, so every lane's soft bits are
    /// window sums over this one cache. Maintained by the planar engine only.
    diffs: Vec<f32>,
    /// Scratch for per-lane window sums (planar engine).
    sums_scratch: Vec<f32>,
    /// Scratch for per-lane hard bits (planar engine).
    bits_scratch: Vec<u8>,
    /// Runs the original interleaved `f64` demodulation when set.
    reference: bool,
    /// Absolute bit index of local bit 0 (same for every lane).
    base_bits: usize,
    lanes: Vec<Lane>,
    /// Sync hits below this absolute bit index are spent: either consumed by
    /// a delivered frame or one-past a committed failure.
    armed: usize,
    /// Committed decode attempts so far (frames and failures).
    attempts: u64,
    /// Frames delivered so far.
    frames: u64,
}

impl<R: RawFskRadio> WazaBeeRx<R> {
    /// Opens a chunk-fed streaming receiver over this primitive's radio and
    /// configuration. See [`StreamingRx`].
    pub fn stream(&self) -> StreamingRx<'_, R> {
        self.stream_engine(false)
    }

    /// Opens a streaming receiver that demodulates with the original
    /// interleaved `f64` path (per-lane libm discriminator) instead of the
    /// planar SIMD engine.
    ///
    /// This is the committed-behaviour reference: the parity suite decodes
    /// identical fixtures through both engines and pins that every recovered
    /// frame matches, and the throughput benchmarks report the planar
    /// engine's speedup against it.
    pub fn stream_reference(&self) -> StreamingRx<'_, R> {
        self.stream_engine(true)
    }

    fn stream_engine(&self, reference: bool) -> StreamingRx<'_, R> {
        let pattern = PackedBits::from_bits(self.sync_bits());
        let sps = self.radio().samples_per_symbol();
        let lanes = (0..sps)
            .map(|_| Lane {
                bits: PackedBits::default(),
                corr: StreamCorrelator::new(&pattern, self.max_sync_errors()),
                matches: VecDeque::new(),
            })
            .collect();
        StreamingRx {
            rx: self,
            sps,
            pattern_len: pattern.len(),
            samples: IqBuf::new(),
            ref_samples: Vec::new(),
            diffs: Vec::new(),
            sums_scratch: Vec::new(),
            bits_scratch: Vec::new(),
            reference,
            base_bits: 0,
            lanes,
            armed: 0,
            attempts: 0,
            frames: 0,
        }
    }
}

impl<R: RawFskRadio> StreamingRx<'_, R> {
    /// Consumes one IQ chunk (any size, including empty) and returns every
    /// attempt that could be *committed* with the bits now available, in
    /// stream order. Attempts still waiting on future bits are held
    /// internally and re-examined on the next push.
    pub fn push(&mut self, chunk: &[Iq]) -> Vec<Result<ReceivedPpdu, WazaBeeError>> {
        wazabee_telemetry::counter!("wazabee.stream.chunks").inc();
        if self.reference {
            self.ref_samples.extend_from_slice(chunk);
        } else {
            self.samples.extend_interleaved(chunk);
        }
        self.ingest();
        let out = self.drain(false);
        self.trim();
        out
    }

    /// Planar form of [`StreamingRx::push`]: consumes a zero-copy planar
    /// window without ever interleaving. Chunking remains observationally
    /// invisible, and mixing `push` and `push_planar` on one stream is fine —
    /// both append to the same retained buffer.
    pub fn push_planar(
        &mut self,
        chunk: wazabee_dsp::IqSlice<'_>,
    ) -> Vec<Result<ReceivedPpdu, WazaBeeError>> {
        wazabee_telemetry::counter!("wazabee.stream.chunks").inc();
        if self.reference {
            self.ref_samples.extend(chunk.to_interleaved());
        } else {
            self.samples.extend_slice(chunk);
        }
        self.ingest();
        let out = self.drain(false);
        self.trim();
        out
    }

    /// Flushes the stream: every held attempt is decoded against the final
    /// bit count, with mid-frame stream ends committed as
    /// [`WazaBeeError::Truncated`].
    pub fn finish(mut self) -> Vec<Result<ReceivedPpdu, WazaBeeError>> {
        self.flush()
    }

    /// In-place form of [`StreamingRx::finish`]: commits every held attempt
    /// against the final bit count without consuming the engine, so a pooled
    /// engine can be [`StreamingRx::reset`] and recycled for the next
    /// session. Pushing more samples after a flush without a reset continues
    /// the old stream (flush does not rewind the armed point).
    pub fn flush(&mut self) -> Vec<Result<ReceivedPpdu, WazaBeeError>> {
        self.drain(true)
    }

    /// Returns the engine to its freshly opened state while *reusing* every
    /// allocation — the lane bit words, the retained sample rails, the diff
    /// cache and the scratch buffers all keep their capacity. A session pool
    /// recycles engines through `flush` → `reset` instead of rebuilding the
    /// per-lane state per stream; the regression suite pins that a reset
    /// engine decodes byte-identically to a fresh one.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.ref_samples.clear();
        self.diffs.clear();
        self.sums_scratch.clear();
        self.bits_scratch.clear();
        self.base_bits = 0;
        self.armed = 0;
        self.attempts = 0;
        self.frames = 0;
        for lane in &mut self.lanes {
            lane.bits.clear();
            lane.corr.reset();
            lane.matches.clear();
        }
    }

    /// Committed decode attempts so far (frames plus typed failures).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Frames delivered so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Demodulates whatever fresh bits the retained samples now support, per
    /// lane, and runs them through that lane's correlator.
    fn ingest(&mut self) {
        if self.reference {
            self.ingest_reference();
            return;
        }
        // One shared discriminator pass: each new sample pair contributes
        // exactly one difference, through the radio's planar hook (the SIMD
        // kernel for every modem in this workspace). The `sps` lanes then
        // read disjoint phase offsets of this cache instead of re-running
        // the discriminator per lane.
        let n = self.samples.len();
        if n >= 2 && self.diffs.len() < n - 1 {
            let _s = wazabee_telemetry::stage!("stream.demod");
            let from = self.diffs.len();
            self.rx
                .radio()
                .discriminate_planar_into(self.samples.slice_from(from), &mut self.diffs);
        }
        let sps = self.sps;
        let armed = self.armed;
        let diffs = &self.diffs;
        let sums = &mut self.sums_scratch;
        let bits = &mut self.bits_scratch;
        for (offset, lane) in self.lanes.iter_mut().enumerate() {
            // First difference index of this lane's next undemodulated symbol.
            let rel = offset + lane.bits.len() * sps;
            let fresh_bits = diffs.len().saturating_sub(rel) / sps;
            if fresh_bits == 0 {
                continue;
            }
            sums.clear();
            bits.clear();
            {
                let _s = wazabee_telemetry::stage!("stream.demod");
                simd::window_sums_into(&diffs[rel..rel + fresh_bits * sps], sps, sums);
                simd::nrz_hard_bits_into(sums, bits);
            }
            let from = lane.bits.len();
            lane.bits.extend_from_bits(bits);
            {
                let _s = wazabee_telemetry::stage!("stream.correlate");
                for k in from..lane.bits.len() {
                    let bit = lane.bits.bit(k);
                    if let Some(pm) = lane.corr.push(bit) {
                        if pm.index >= armed {
                            lane.matches.push_back(pm);
                        }
                    }
                }
            }
        }
    }

    /// The original per-lane interleaved `f64` ingest, kept alive behind
    /// [`WazaBeeRx::stream_reference`] for parity tests and benchmarks.
    fn ingest_reference(&mut self) {
        let sps = self.sps;
        let armed = self.armed;
        let samples = &self.ref_samples;
        let radio = self.rx.radio();
        for (offset, lane) in self.lanes.iter_mut().enumerate() {
            // Local sample index of this lane's next undemodulated symbol.
            let rel = offset + lane.bits.len() * sps;
            if rel >= samples.len() {
                continue;
            }
            let fresh = {
                let _s = wazabee_telemetry::stage!("stream.demod");
                radio.demodulate_raw(&samples[rel..])
            };
            let from = lane.bits.len();
            lane.bits.extend_from_bits(&fresh);
            {
                let _s = wazabee_telemetry::stage!("stream.correlate");
                for k in from..lane.bits.len() {
                    let bit = lane.bits.bit(k);
                    if let Some(pm) = lane.corr.push(bit) {
                        if pm.index >= armed {
                            lane.matches.push_back(pm);
                        }
                    }
                }
            }
        }
    }

    /// Commits every attempt that is decidable with the bits seen so far.
    /// With `finished` set, nothing is held back: running out of bits is
    /// final and mid-frame attempts become `Truncated`.
    fn drain(&mut self, finished: bool) -> Vec<Result<ReceivedPpdu, WazaBeeError>> {
        let m = self.pattern_len;
        let mut out = Vec::new();
        loop {
            for lane in &mut self.lanes {
                while lane.matches.front().is_some_and(|pm| pm.index < self.armed) {
                    lane.matches.pop_front();
                }
            }
            let Some(i_min) = self
                .lanes
                .iter()
                .filter_map(|l| l.matches.front().map(|pm| pm.index))
                .min()
            else {
                break;
            };
            // Selection is only stable once every lane has searched the
            // whole candidate window [i_min, i_min + 1] — a slower lane
            // could still produce a better-aligned hit there.
            if !finished && self.lanes.iter().any(|l| l.corr.consumed() < i_min + 1 + m) {
                break;
            }
            // Adjacent sample phases see the same physical sync event up to
            // one bit apart, so pick among hits in that window — best sync
            // first, then the earliest (cleanest) sample phase, matching the
            // one-shot capture's selection.
            let (offset, pm) = self
                .lanes
                .iter()
                .enumerate()
                .filter_map(|(o, l)| {
                    l.matches
                        .front()
                        .filter(|pm| pm.index <= i_min + 1)
                        .map(|pm| (o, *pm))
                })
                .min_by_key(|&(o, pm)| (pm.errors, o, pm.index))
                .expect("a front exists at i_min");
            let start_rel = pm.index + m - self.base_bits;
            // One causal span per decode attempt; its id is threaded into the
            // flight-recorder trace so a PCAP frame links back to this slice.
            let span = wazabee_telemetry::span!(
                "rx.decode",
                frame = self.attempts,
                bit = pm.index,
                lane = offset,
                sync_errors = pm.errors
            );
            // The stage covers replays of held attempts on purpose: the
            // profiler answers "where did the CPU go", and re-decoding is
            // real work even when the attempt cannot commit yet.
            let outcome = {
                let _s = wazabee_telemetry::stage!("stream.decode");
                self.rx
                    .decode_after_sync(&self.lanes[offset].bits, start_rel, finished)
            };
            match outcome {
                DecodeOutcome::NeedBits => break,
                DecodeOutcome::Frame {
                    psdu,
                    chip_errors,
                    used_bits,
                    distances,
                } => {
                    let mut tr = self.begin_trace(offset, &pm, &distances);
                    tr.link_span(span.id());
                    let frame = ReceivedPpdu {
                        psdu,
                        chip_errors,
                        shr_errors: pm.errors,
                    };
                    self.commit_frame(tr, &frame);
                    // The sync pattern repeats through the preamble: one bit
                    // past the hit would re-fire inside the frame body, so
                    // skip the whole consumed region.
                    self.armed = pm.index + m + used_bits;
                    out.push(Ok(frame));
                }
                DecodeOutcome::Fail { err, distances } => {
                    let mut tr = self.begin_trace(offset, &pm, &distances);
                    tr.link_span(span.id());
                    self.commit_failure(tr, &err);
                    // Re-arm one bit past the failed hit — the next (possibly
                    // overlapping) alignment gets its own attempt.
                    self.armed = pm.index + 1;
                    out.push(Err(err));
                }
            }
        }
        out
    }

    /// Opens the flight-recorder trace for a committing attempt and replays
    /// its accumulated despread decisions into telemetry — exactly once per
    /// attempt, however many times the decode was re-run while held.
    fn begin_trace(
        &mut self,
        offset: usize,
        pm: &PatternMatch,
        distances: &[usize],
    ) -> TraceHandle {
        wazabee_telemetry::counter!("wazabee.rx.sync.hit").inc();
        wazabee_telemetry::counter!("wazabee.stream.attempts").inc();
        for &d in distances {
            wazabee_telemetry::counter!("wazabee.rx.despread.symbols").inc();
            wazabee_telemetry::value_histogram!("wazabee.rx.despread_hamming", 0.0, 32.0)
                .record(d as f64);
        }
        let mut tr = wazabee_flightrec::begin("wazabee.rx");
        if tr.active() {
            tr.attempt(self.attempts);
            let sample_rate = self.rx.radio().sample_rate();
            // The planar engine materialises an interleaved view only here,
            // on the traced path — the hot path never re-interleaves.
            let widened;
            let all: &[Iq] = if self.reference {
                &self.ref_samples
            } else {
                widened = self.samples.to_interleaved();
                &widened
            };
            tr.tap_iq(all, sample_rate, None);
            // Data-aided CFO over the window starting at the sync hit's own
            // sample — leading silence would dilute a buffer-start mean, and
            // the lane's bit decisions cancel the data's 1/0 imbalance.
            let bit0 = pm.index - self.base_bits;
            let rel = offset + bit0 * self.sps;
            if rel < all.len() {
                if let Some(cfo) = estimate_cfo_hz_synced(
                    &all[rel..],
                    &self.lanes[offset].bits,
                    bit0,
                    self.sps,
                    sample_rate,
                ) {
                    tr.cfo_hz(cfo);
                }
            }
            tr.sync(pm.errors, pm.index, offset, self.pattern_len);
            for &d in distances {
                tr.despread(d);
            }
        }
        self.attempts += 1;
        tr
    }

    /// Telemetry + trace delivery for a recovered frame.
    fn commit_frame(&mut self, tr: TraceHandle, frame: &ReceivedPpdu) {
        let fcs = {
            let _s = wazabee_telemetry::stage!("stream.crc");
            frame.fcs_ok()
        };
        if fcs {
            wazabee_telemetry::counter!("wazabee.rx.fcs.ok").inc();
        } else {
            wazabee_telemetry::counter!("wazabee.rx.fcs.fail").inc();
            wazabee_telemetry::counter!("wazabee.rx.fail.fcs").inc();
        }
        wazabee_telemetry::counter!("wazabee.stream.frames").inc();
        self.frames += 1;
        tr.deliver(&frame.psdu, fcs, FrameKind::Dot154);
    }

    /// Per-reason telemetry + trace failure for a dead attempt.
    fn commit_failure(&mut self, mut tr: TraceHandle, err: &WazaBeeError) {
        match err {
            WazaBeeError::SyncFalsePositive => {
                wazabee_telemetry::counter!("wazabee.rx.fail.sync_false_positive").inc();
            }
            WazaBeeError::DespreadDistanceExceeded { .. } => {
                wazabee_telemetry::counter!("wazabee.rx.fail.despread_distance").inc();
            }
            WazaBeeError::PreambleOverrun => {
                wazabee_telemetry::counter!("wazabee.rx.fail.preamble_overrun").inc();
            }
            WazaBeeError::PhrReserved { .. } => {
                wazabee_telemetry::counter!("wazabee.rx.phr.reserved").inc();
                wazabee_telemetry::counter!("wazabee.rx.fail.phr_reserved").inc();
                tr.phr_reserved();
            }
            WazaBeeError::Truncated => {
                wazabee_telemetry::counter!("wazabee.rx.truncated").inc();
                wazabee_telemetry::counter!("wazabee.rx.fail.truncated").inc();
            }
            _ => {}
        }
        tr.fail(rx_failure(err));
    }

    /// Releases the front of the sample and bit buffers once nothing pending
    /// can reach back that far: behind every queued sync hit, and behind any
    /// alignment the slowest lane's correlator could still report.
    fn trim(&mut self) {
        let m = self.pattern_len;
        let earliest_match = self
            .lanes
            .iter()
            .filter_map(|l| l.matches.front().map(|pm| pm.index))
            .min();
        let min_consumed = self
            .lanes
            .iter()
            .map(|l| l.corr.consumed())
            .min()
            .unwrap_or(0);
        let future_floor = min_consumed.saturating_sub(m - 1);
        let keep_from = earliest_match.map_or(future_floor, |e| e.min(future_floor));
        if keep_from < self.base_bits + TRIM_THRESHOLD_BITS {
            return;
        }
        let target_words = (keep_from - self.base_bits).saturating_sub(TRIM_SLACK_BITS) / 64;
        let min_local_bits = self.lanes.iter().map(|l| l.bits.len()).min().unwrap_or(0);
        let words = target_words.min(min_local_bits / 64);
        if words == 0 {
            return;
        }
        for lane in &mut self.lanes {
            lane.bits.drop_front_words(words);
        }
        self.base_bits += words * 64;
        let drop = words * 64 * self.sps;
        if self.reference {
            self.ref_samples.drain(..drop);
        } else {
            // The diff cache shifts with the samples: dropping `drop` samples
            // drops the same count of leading differences (all consumed — the
            // trimmed region sits behind every lane's demodulated bits), and
            // `diffs[0]` keeps describing the step between samples 0 and 1.
            self.samples.drain_front(drop);
            self.diffs.drain(..drop.min(self.diffs.len()));
        }
    }
}

#[cfg(test)]
mod tests {
    use wazabee_ble::{BleModem, BlePhy};
    use wazabee_dot154::fcs::append_fcs;
    use wazabee_dot154::{Dot154Modem, Ppdu};

    use crate::error::WazaBeeError;
    use crate::rx::WazaBeeRx;

    fn ble_rx() -> WazaBeeRx<BleModem> {
        WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap()
    }

    fn ppdu(payload: &[u8]) -> Ppdu {
        Ppdu::new(append_fcs(payload)).unwrap()
    }

    #[test]
    fn single_frame_in_tiny_chunks() {
        let p = ppdu(&[0xDE, 0xAD, 0xBE, 0xEF]);
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = ble_rx();
        let mut stream = rx.stream();
        let mut results = Vec::new();
        for chunk in air.chunks(513) {
            results.extend(stream.push(chunk));
        }
        results.extend(stream.finish());
        let frames: Vec<_> = results.into_iter().filter_map(Result::ok).collect();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].psdu, p.psdu());
        assert!(frames[0].fcs_ok());
    }

    #[test]
    fn two_frames_in_one_stream() {
        let modem = Dot154Modem::new(8);
        let a = ppdu(&[1, 1, 1]);
        let b = ppdu(&[2, 2, 2, 2]);
        let mut air = modem.transmit(&a);
        air.extend(vec![wazabee_dsp::Iq::ZERO; 777]);
        air.extend(modem.transmit(&b));
        let rx = ble_rx();
        let mut stream = rx.stream();
        let mut results = stream.push(&air);
        results.extend(stream.finish());
        let frames: Vec<_> = results.into_iter().filter_map(Result::ok).collect();
        assert_eq!(frames.len(), 2, "both frames must come out, in order");
        assert_eq!(frames[0].psdu, a.psdu());
        assert_eq!(frames[1].psdu, b.psdu());
    }

    #[test]
    fn truncated_stream_flushes_as_truncated() {
        let p = ppdu(&[7; 60]);
        let air = Dot154Modem::new(8).transmit(&p);
        let cut = air.len() / 2;
        let rx = ble_rx();
        let mut stream = rx.stream();
        let mut results = stream.push(&air[..cut]);
        assert!(
            results.iter().all(Result::is_err),
            "no frame can be committed from half a capture"
        );
        results.extend(stream.finish());
        assert!(results.iter().any(|r| r == &Err(WazaBeeError::Truncated)));
        assert!(results.iter().all(Result::is_err));
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let rx = ble_rx();
        let mut stream = rx.stream();
        assert!(stream.push(&[]).is_empty());
        assert_eq!(stream.attempts(), 0);
        assert!(stream.finish().is_empty());
    }

    #[test]
    fn reference_engine_matches_planar_engine() {
        let modem = Dot154Modem::new(8);
        let a = ppdu(&[0x11, 0x22, 0x33]);
        let b = ppdu(&[0x44, 0x55]);
        let mut air = modem.transmit(&a);
        air.extend(vec![wazabee_dsp::Iq::ZERO; 901]);
        air.extend(modem.transmit(&b));
        let rx = ble_rx();
        let run = |mut s: super::StreamingRx<'_, BleModem>| {
            let mut results = Vec::new();
            for chunk in air.chunks(777) {
                results.extend(s.push(chunk));
            }
            results.extend(s.finish());
            results
        };
        let planar = run(rx.stream());
        let reference = run(rx.stream_reference());
        assert_eq!(planar.len(), reference.len());
        for (p, r) in planar.iter().zip(&reference) {
            assert_eq!(p, r);
        }
        assert_eq!(planar.iter().filter(|r| r.is_ok()).count(), 2);
    }

    #[test]
    fn reset_engine_decodes_identically_to_fresh() {
        // A recycled engine (decode → flush → reset) must be observationally
        // identical to a freshly opened one: same frames, same typed
        // failures, same order — on a second capture that includes a decoy,
        // long silence (exercising trim state) and two genuine frames.
        let modem = Dot154Modem::new(8);
        let first = ppdu(&[0x01, 0x02, 0x03]);
        let a = ppdu(&[0xAA; 12]);
        let b = ppdu(&[0xBB, 0xCC]);
        let mut second = vec![wazabee_dsp::Iq::ZERO; 150_000];
        second.extend(modem.transmit(&a));
        second.extend(vec![wazabee_dsp::Iq::ZERO; 333]);
        second.extend(modem.transmit(&b));

        let rx = ble_rx();
        let run = |s: &mut super::StreamingRx<'_, BleModem>, air: &[wazabee_dsp::Iq]| {
            let mut results = Vec::new();
            for chunk in air.chunks(2048) {
                results.extend(s.push(chunk));
            }
            results.extend(s.flush());
            results
        };

        let mut recycled = rx.stream();
        let warmup = run(&mut recycled, &modem.transmit(&first));
        assert_eq!(warmup.iter().filter(|r| r.is_ok()).count(), 1);
        assert_eq!(recycled.frames(), 1);
        recycled.reset();
        assert_eq!(recycled.attempts(), 0);
        assert_eq!(recycled.frames(), 0);

        let mut fresh = rx.stream();
        let got = run(&mut recycled, &second);
        let want = run(&mut fresh, &second);
        assert_eq!(got, want, "recycled engine must match a fresh engine");
        assert_eq!(got.iter().filter(|r| r.is_ok()).count(), 2);

        // The reference engine recycles identically.
        let mut ref_recycled = rx.stream_reference();
        let _ = run(&mut ref_recycled, &modem.transmit(&first));
        ref_recycled.reset();
        let mut ref_fresh = rx.stream_reference();
        assert_eq!(
            run(&mut ref_recycled, &second),
            run(&mut ref_fresh, &second)
        );
    }

    #[test]
    fn trim_keeps_long_silence_bounded_and_correct() {
        // A frame after a very long silent lead-in: the trim path must fire
        // (releasing front buffers) without disturbing the decode.
        let p = ppdu(&[9, 8, 7]);
        let mut air = vec![wazabee_dsp::Iq::ZERO; 200_000];
        air.extend(Dot154Modem::new(8).transmit(&p));
        let rx = ble_rx();
        let mut stream = rx.stream();
        let mut results = Vec::new();
        for chunk in air.chunks(4096) {
            results.extend(stream.push(chunk));
        }
        assert!(
            stream.samples.len() < 200_000,
            "trim must have released the silent lead-in"
        );
        results.extend(stream.finish());
        let frames: Vec<_> = results.into_iter().filter_map(Result::ok).collect();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].psdu, p.psdu());
    }
}
