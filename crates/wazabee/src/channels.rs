//! Zigbee ↔ BLE channel mapping (paper Table II).
//!
//! BLE and 802.15.4 channels share the 2 MHz bandwidth, and eight of the
//! sixteen Zigbee channels sit exactly on a BLE channel's centre frequency.
//! Chips that can only tune to BLE channels (no arbitrary-frequency API) are
//! restricted to this subset; chips with free tuning reach all sixteen.

use wazabee_ble::BleChannel;
use wazabee_dot154::Dot154Channel;

/// One row of paper Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonChannel {
    /// The Zigbee (802.15.4) channel.
    pub zigbee: Dot154Channel,
    /// The BLE channel sharing its centre frequency.
    pub ble: BleChannel,
}

impl CommonChannel {
    /// The shared centre frequency in MHz.
    pub fn center_mhz(self) -> u32 {
        self.zigbee.center_mhz()
    }
}

/// All Zigbee/BLE channel pairs with a common centre frequency, in Zigbee
/// channel order — exactly the eight rows of paper Table II.
pub fn common_channels() -> Vec<CommonChannel> {
    let mut out = Vec::new();
    for zigbee in Dot154Channel::all() {
        if let Some(ble) = BleChannel::from_center_mhz(zigbee.center_mhz()) {
            out.push(CommonChannel { zigbee, ble });
        }
    }
    out
}

/// The BLE channel sharing a Zigbee channel's frequency, if one exists.
pub fn ble_channel_for_zigbee(zigbee: Dot154Channel) -> Option<BleChannel> {
    BleChannel::from_center_mhz(zigbee.center_mhz())
}

/// The Zigbee channel sharing a BLE channel's frequency, if one exists.
pub fn zigbee_channel_for_ble(ble: BleChannel) -> Option<Dot154Channel> {
    Dot154Channel::from_center_mhz(ble.center_mhz())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_the_eight_rows_of_table_2() {
        let rows = common_channels();
        let expect: [(u8, u8, u32); 8] = [
            (12, 3, 2410),
            (14, 8, 2420),
            (16, 12, 2430),
            (18, 17, 2440),
            (20, 22, 2450),
            (22, 27, 2460),
            (24, 32, 2470),
            (26, 39, 2480),
        ];
        assert_eq!(rows.len(), 8);
        for (row, (z, b, f)) in rows.iter().zip(expect) {
            assert_eq!(row.zigbee.number(), z);
            assert_eq!(row.ble.index(), b);
            assert_eq!(row.center_mhz(), f);
            assert_eq!(row.ble.center_mhz(), f);
        }
    }

    #[test]
    fn only_even_zigbee_channels_are_common() {
        for row in common_channels() {
            assert_eq!(row.zigbee.number() % 2, 0);
        }
        // Odd Zigbee channels sit between BLE channels.
        for z in [11u8, 13, 15, 17, 19, 21, 23, 25] {
            assert!(ble_channel_for_zigbee(Dot154Channel::new(z).unwrap()).is_none());
        }
    }

    #[test]
    fn lookups_are_inverse() {
        for row in common_channels() {
            assert_eq!(ble_channel_for_zigbee(row.zigbee), Some(row.ble));
            assert_eq!(zigbee_channel_for_ble(row.ble), Some(row.zigbee));
        }
    }

    #[test]
    fn paper_testbed_channel_14_maps_to_ble_8() {
        let z14 = Dot154Channel::new(14).unwrap();
        assert_eq!(ble_channel_for_zigbee(z14).unwrap().index(), 8);
    }

    #[test]
    fn ble_advertising_channel_39_reaches_zigbee_26() {
        // The only primary advertising channel overlapping Zigbee.
        let b39 = BleChannel::new(39).unwrap();
        assert_eq!(zigbee_channel_for_ble(b39).unwrap().number(), 26);
    }
}
