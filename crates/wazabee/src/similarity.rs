//! A modulation-similarity metric (the paper's §VIII future work).
//!
//! The paper closes by proposing *"a metric to measure the similarities
//! between two modulations"* to anticipate which protocol pairs are
//! vulnerable to WazaBee-style pivoting. This module implements one: the
//! **cross-demodulation agreement** — modulate a random bit stream with
//! waveform family A, demodulate with family B's receiver at a reference
//! SNR, and measure the fraction of bits that survive. Two families are
//! pivot-compatible exactly when this score stays near 1.0.
//!
//! The common currency between families is the MSK transition-bit stream:
//! every constant-envelope family here maps one bit to one ±phase excursion
//! per symbol period, which is precisely the property WazaBee exploits.

use wazabee_ble::gfsk::{modulate as gfsk_modulate, GfskParams};
use wazabee_dsp::bits::nrz_to_bits;
use wazabee_dsp::discriminator::discriminate;
use wazabee_dsp::fir::integrate_and_dump;
use wazabee_dsp::iq::Iq;
use wazabee_dsp::AwgnSource;

use wazabee_dot154::msk::msk_to_chips;
use wazabee_dot154::oqpsk::modulate_chips;

/// A waveform family whose pivot-compatibility can be scored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaveformFamily {
    /// Frequency shift keying with rectangular shaping and modulation
    /// index `h` (`h = 0.5` is MSK — BLE's idealised waveform).
    Fsk {
        /// Modulation index.
        modulation_index: f64,
    },
    /// Gaussian FSK: BLE's actual waveform (`h = 0.5`, `bt = 0.5`).
    Gfsk {
        /// Modulation index.
        modulation_index: f64,
        /// Bandwidth-time product of the Gaussian filter.
        bt: f64,
    },
    /// O-QPSK with half-sine pulse shaping — 802.15.4's waveform, driven
    /// through the MSK-equivalent chip precoding.
    OqpskHalfSine,
    /// On-off keying: an amplitude modulation, included as the negative
    /// control — no FSK receiver should be able to read it.
    Ook,
}

impl WaveformFamily {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            WaveformFamily::Fsk { modulation_index } => format!("2-FSK(h={modulation_index})"),
            WaveformFamily::Gfsk {
                modulation_index,
                bt,
            } => format!("GFSK(h={modulation_index},BT={bt})"),
            WaveformFamily::OqpskHalfSine => "O-QPSK-halfsine".to_string(),
            WaveformFamily::Ook => "OOK".to_string(),
        }
    }

    /// BLE LE 2M's nominal waveform.
    pub fn ble_le2m() -> Self {
        WaveformFamily::Gfsk {
            modulation_index: 0.5,
            bt: 0.5,
        }
    }

    /// Modulates an MSK-domain bit stream (one bit per symbol period).
    pub fn modulate(&self, bits: &[u8], samples_per_symbol: usize) -> Vec<Iq> {
        match *self {
            WaveformFamily::Fsk { modulation_index } => gfsk_modulate(
                &fsk_params(modulation_index, None, samples_per_symbol),
                bits,
            ),
            WaveformFamily::Gfsk {
                modulation_index,
                bt,
            } => gfsk_modulate(
                &fsk_params(modulation_index, Some(bt), samples_per_symbol),
                bits,
            ),
            WaveformFamily::OqpskHalfSine => {
                // Precode the transition bits to chips, then shape half-sine.
                let chips = msk_to_chips(bits, 0, false);
                modulate_chips(&chips, samples_per_symbol)
            }
            WaveformFamily::Ook => bits
                .iter()
                .flat_map(|&b| std::iter::repeat_n(Iq::new(f64::from(b), 0.0), samples_per_symbol))
                .collect(),
        }
    }

    /// Demodulates back to MSK-domain bits with this family's receiver.
    ///
    /// All FSK-family receivers are FM discriminators with per-symbol
    /// integration; the OOK receiver is an envelope detector.
    pub fn demodulate(&self, samples: &[Iq], samples_per_symbol: usize) -> Vec<u8> {
        match self {
            WaveformFamily::Ook => samples
                .chunks_exact(samples_per_symbol)
                .map(|c| {
                    let p: f64 =
                        c.iter().map(|s| s.power()).sum::<f64>() / samples_per_symbol as f64;
                    u8::from(p > 0.5)
                })
                .collect(),
            _ => {
                let freq = discriminate(samples);
                nrz_to_bits(&integrate_and_dump(&freq, samples_per_symbol))
            }
        }
    }
}

/// FSK-family parameters at the common 2 Msym/s comparison rate, reusing the
/// BLE crate's modulator rather than re-implementing FM synthesis.
fn fsk_params(modulation_index: f64, bt: Option<f64>, samples_per_symbol: usize) -> GfskParams {
    GfskParams {
        symbol_rate: 2.0e6,
        samples_per_symbol,
        modulation_index,
        bt,
        gaussian_span: 3,
    }
}

/// The similarity score of transmitting with `tx` and receiving with `rx`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityScore {
    /// Fraction of bits recovered (1.0 = perfectly pivot-compatible,
    /// ≈ 0.5 = uncorrelated).
    pub agreement: f64,
    /// Number of bits compared.
    pub bits: usize,
}

impl SimilarityScore {
    /// Whether the pair is practically divertible: agreement high enough
    /// that DSSS-style coding closes the residual gap.
    pub fn pivot_compatible(&self) -> bool {
        self.agreement >= 0.9
    }
}

/// Measures cross-demodulation agreement between two waveform families at a
/// reference SNR.
///
/// Deterministic for a given `seed`. The first and last bits are excluded
/// from scoring (modulator ramp-in/out are implementation details, not
/// waveform properties).
///
/// # Panics
///
/// Panics if `n_bits < 8` or `samples_per_symbol < 2`.
pub fn cross_similarity(
    tx: WaveformFamily,
    rx: WaveformFamily,
    n_bits: usize,
    samples_per_symbol: usize,
    snr_db: f64,
    seed: u64,
) -> SimilarityScore {
    assert!(n_bits >= 8, "need at least 8 bits");
    assert!(
        samples_per_symbol >= 2,
        "need at least 2 samples per symbol"
    );
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let bits: Vec<u8> = (0..n_bits).map(|_| rng.gen_range(0..=1)).collect();
    let mut waveform = tx.modulate(&bits, samples_per_symbol);
    AwgnSource::from_snr_db(seed ^ 0x5EED, snr_db, 1.0).add_to(&mut waveform);
    let decoded = rx.demodulate(&waveform, samples_per_symbol);
    let n = decoded.len().min(bits.len());
    if n < 3 {
        return SimilarityScore {
            agreement: 0.0,
            bits: 0,
        };
    }
    let compared = &bits[1..n - 1];
    let got = &decoded[1..n - 1];
    let agree = compared.iter().zip(got).filter(|(a, b)| a == b).count();
    SimilarityScore {
        agreement: agree as f64 / compared.len() as f64,
        bits: compared.len(),
    }
}

/// Scores every ordered pair of a family list (the matrix the paper's
/// future-work section asks for).
pub fn similarity_matrix(
    families: &[WaveformFamily],
    n_bits: usize,
    samples_per_symbol: usize,
    snr_db: f64,
    seed: u64,
) -> Vec<Vec<SimilarityScore>> {
    families
        .iter()
        .map(|&tx| {
            families
                .iter()
                .map(|&rx| cross_similarity(tx, rx, n_bits, samples_per_symbol, snr_db, seed))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPS: usize = 8;
    const SNR: f64 = 12.0;

    fn score(tx: WaveformFamily, rx: WaveformFamily) -> f64 {
        cross_similarity(tx, rx, 512, SPS, SNR, 7).agreement
    }

    #[test]
    fn msk_and_oqpsk_are_pivot_compatible_both_ways() {
        // The core of the paper, as a metric.
        let msk = WaveformFamily::Fsk {
            modulation_index: 0.5,
        };
        let oqpsk = WaveformFamily::OqpskHalfSine;
        assert!(
            score(msk, oqpsk) > 0.99,
            "MSK→O-QPSK: {}",
            score(msk, oqpsk)
        );
        assert!(
            score(oqpsk, msk) > 0.99,
            "O-QPSK→MSK: {}",
            score(oqpsk, msk)
        );
    }

    #[test]
    fn ble_gfsk_is_pivot_compatible_with_oqpsk() {
        let ble = WaveformFamily::ble_le2m();
        let oqpsk = WaveformFamily::OqpskHalfSine;
        let s = cross_similarity(ble, oqpsk, 512, SPS, SNR, 9);
        assert!(s.pivot_compatible(), "agreement {}", s.agreement);
        assert!(s.agreement > 0.93, "agreement {}", s.agreement);
    }

    #[test]
    fn gaussian_filter_costs_a_little_agreement() {
        let msk = WaveformFamily::Fsk {
            modulation_index: 0.5,
        };
        let gmsk = WaveformFamily::ble_le2m();
        let oqpsk = WaveformFamily::OqpskHalfSine;
        let clean = score(msk, oqpsk);
        let filtered = score(gmsk, oqpsk);
        assert!(filtered <= clean + 1e-9, "gaussian better than ideal?");
    }

    #[test]
    fn ook_is_not_divertible_to_fsk() {
        // The negative control the metric must catch: amplitude modulation
        // carries nothing an FM discriminator can read.
        let ook = WaveformFamily::Ook;
        let msk = WaveformFamily::Fsk {
            modulation_index: 0.5,
        };
        let s = cross_similarity(ook, msk, 512, SPS, SNR, 11);
        assert!(!s.pivot_compatible(), "agreement {}", s.agreement);
        assert!(s.agreement < 0.75, "agreement {}", s.agreement);
    }

    #[test]
    fn low_modulation_index_degrades_under_noise() {
        // h = 0.1 leaves almost no frequency margin: at the reference SNR
        // agreement drops well below the h = 0.5 score.
        let weak = WaveformFamily::Fsk {
            modulation_index: 0.1,
        };
        let strong = WaveformFamily::Fsk {
            modulation_index: 0.5,
        };
        let rx = WaveformFamily::OqpskHalfSine;
        let snr = 2.0;
        let s_weak = cross_similarity(weak, rx, 1024, SPS, snr, 13).agreement;
        let s_strong = cross_similarity(strong, rx, 1024, SPS, snr, 13).agreement;
        assert!(
            s_weak + 0.02 < s_strong,
            "weak {s_weak} not worse than strong {s_strong}"
        );
    }

    #[test]
    fn self_similarity_is_high_for_every_family() {
        for fam in [
            WaveformFamily::Fsk {
                modulation_index: 0.5,
            },
            WaveformFamily::ble_le2m(),
            WaveformFamily::OqpskHalfSine,
            WaveformFamily::Ook,
        ] {
            let s = cross_similarity(fam, fam, 256, SPS, 15.0, 17);
            assert!(
                s.agreement > 0.95,
                "{} self-score {}",
                fam.name(),
                s.agreement
            );
        }
    }

    #[test]
    fn matrix_shape_and_determinism() {
        let fams = [
            WaveformFamily::ble_le2m(),
            WaveformFamily::OqpskHalfSine,
            WaveformFamily::Ook,
        ];
        let a = similarity_matrix(&fams, 128, SPS, SNR, 3);
        let b = similarity_matrix(&fams, 128, SPS, SNR, 3);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|row| row.len() == 3));
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_informative() {
        assert!(WaveformFamily::ble_le2m().name().contains("GFSK"));
        assert!(WaveformFamily::OqpskHalfSine.name().contains("O-QPSK"));
    }

    #[test]
    #[should_panic(expected = "at least 8 bits")]
    fn too_few_bits_rejected() {
        let _ = cross_similarity(WaveformFamily::Ook, WaveformFamily::Ook, 4, 8, 10.0, 0);
    }
}
