//! The WazaBee transmission primitive (paper §IV-D).
//!
//! An 802.15.4 frame is spread to chips, converted to the equivalent MSK bit
//! stream, and fed raw into a 2 Mbit/s GFSK modulator. The resulting
//! waveform is close enough to O-QPSK-with-half-sine that any compliant
//! 802.15.4 receiver demodulates it.

use wazabee_ble::whitening::Whitener;
use wazabee_ble::BleChannel;
use wazabee_dot154::msk::frame_chips_to_msk;
use wazabee_dot154::Ppdu;
use wazabee_dsp::iq::Iq;

use crate::error::WazaBeeError;
use crate::radio::RawFskRadio;

/// Number of alternating warm-up bits prepended before the frame so the
/// receiver's discriminator settles before the 802.15.4 preamble.
pub const TX_WARMUP_BITS: usize = 16;

/// Encodes a PPDU into the MSK bit stream a 2 Mbit/s FSK modulator must
/// emit: warm-up bits, then one bit per chip of the spread frame.
pub fn encode_ppdu_msk(ppdu: &Ppdu) -> Vec<u8> {
    let chips = ppdu.to_chips();
    let mut bits: Vec<u8> = (0..TX_WARMUP_BITS).map(|k| (k % 2) as u8).collect();
    bits.extend(frame_chips_to_msk(&chips, 0));
    bits
}

/// Pre-de-whitens a bit stream for `channel` so that a modulator with
/// *forced* whitening still emits exactly `bits` on air — the workaround of
/// paper §IV-D, requirement 3, for chips whose whitening cannot be disabled.
///
/// Because BLE whitening is a self-inverse keystream XOR, applying it twice
/// is the identity; this function is its own inverse.
pub fn prewhiten_bits(bits: &[u8], channel: BleChannel) -> Vec<u8> {
    Whitener::new(channel).whiten_bits(bits)
}

/// The WazaBee transmission primitive bound to a diverted radio.
///
/// # Examples
///
/// ```
/// use wazabee::WazaBeeTx;
/// use wazabee_ble::{BleModem, BlePhy};
/// use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
///
/// // A BLE chip transmits a Zigbee frame that a real 802.15.4 receiver
/// // decodes with a valid FCS.
/// let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
/// let ppdu = Ppdu::new(append_fcs(&[0x41, 0x42, 0x43])).unwrap();
/// let air = tx.transmit(&ppdu);
/// let rx = Dot154Modem::new(8).receive(&air).unwrap();
/// assert_eq!(rx.psdu, ppdu.psdu());
/// assert!(rx.fcs_ok());
/// ```
#[derive(Debug, Clone)]
pub struct WazaBeeTx<R> {
    radio: R,
}

impl<R: RawFskRadio> WazaBeeTx<R> {
    /// Binds the primitive to a radio, verifying the 2 Mbit/s requirement.
    ///
    /// # Errors
    ///
    /// Returns [`WazaBeeError::UnsupportedDataRate`] when the radio does not
    /// run at 2 Msym/s (e.g. a BLE 4.x chip without LE 2M).
    pub fn new(radio: R) -> Result<Self, WazaBeeError> {
        let rate = radio.symbol_rate();
        if (rate - 2.0e6).abs() > 1.0 {
            return Err(WazaBeeError::UnsupportedDataRate { actual: rate });
        }
        Ok(WazaBeeTx { radio })
    }

    /// The underlying radio.
    pub fn radio(&self) -> &R {
        &self.radio
    }

    /// Transmits an 802.15.4 frame: encodes to MSK bits and modulates raw
    /// (whitening disabled on the chip).
    pub fn transmit(&self, ppdu: &Ppdu) -> Vec<Iq> {
        let _t = wazabee_telemetry::timed_scope!("wazabee.tx.transmit_ns");
        wazabee_telemetry::counter!("wazabee.tx.frames").inc();
        self.radio.transmit_raw(&encode_ppdu_msk(ppdu))
    }

    /// Transmits through a chip whose whitening cannot be disabled: the bits
    /// are pre-de-whitened so the forced whitening restores them.
    ///
    /// The produced waveform is bit-identical to [`WazaBeeTx::transmit`].
    pub fn transmit_via_forced_whitening(&self, ppdu: &Ppdu, channel: BleChannel) -> Vec<Iq> {
        let _t = wazabee_telemetry::timed_scope!("wazabee.tx.transmit_ns");
        wazabee_telemetry::counter!("wazabee.tx.frames").inc();
        wazabee_telemetry::counter!("wazabee.tx.forced_whitening").inc();
        let target = encode_ppdu_msk(ppdu);
        let staged = prewhiten_bits(&target, channel);
        // The chip's hardware whitening re-applies the same keystream.
        let on_air = Whitener::new(channel).whiten_bits(&staged);
        self.radio.transmit_raw(&on_air)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::{BleModem, BlePhy};
    use wazabee_dot154::fcs::append_fcs;
    use wazabee_dot154::{Dot154Modem, MacFrame};
    use wazabee_esb::EsbModem;

    fn ppdu(payload: &[u8]) -> Ppdu {
        Ppdu::new(append_fcs(payload)).unwrap()
    }

    #[test]
    fn le1m_radio_rejected() {
        let err = WazaBeeTx::new(BleModem::new(BlePhy::Le1M, 8)).unwrap_err();
        assert!(matches!(err, WazaBeeError::UnsupportedDataRate { .. }));
    }

    #[test]
    fn ble_tx_decodes_on_msk_view_receiver() {
        let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let frame = MacFrame::data(0x1234, 0x0042, 0x0063, 5, vec![1, 2, 3, 4]);
        let p = Ppdu::new(frame.to_psdu()).unwrap();
        let rx = Dot154Modem::new(8).receive(&tx.transmit(&p)).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
        assert_eq!(MacFrame::from_psdu(&rx.psdu), Some(frame));
    }

    #[test]
    fn ble_tx_decodes_on_coherent_oqpsk_receiver() {
        // The strong form of the paper's claim: the GFSK-generated waveform
        // decodes on a genuine chip-domain O-QPSK correlator, not just on
        // another discriminator.
        let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let p = ppdu(&[0xCA, 0xFE, 0xBA, 0xBE, 0x01, 0x02]);
        let rx = Dot154Modem::new(8)
            .receive_coherent(&tx.transmit(&p))
            .unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
    }

    #[test]
    fn esb_tx_also_works() {
        // Scenario B's substitution: the ESB 2 Mbit/s radio of an nRF51822.
        let tx = WazaBeeTx::new(EsbModem::new(8)).unwrap();
        let p = ppdu(&[9, 8, 7, 6]);
        let rx = Dot154Modem::new(8).receive(&tx.transmit(&p)).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
    }

    #[test]
    fn forced_whitening_path_is_waveform_identical() {
        let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let p = ppdu(&[0x11, 0x22, 0x33]);
        let direct = tx.transmit(&p);
        for idx in [3u8, 8, 25, 39] {
            let ch = BleChannel::new(idx).unwrap();
            let via = tx.transmit_via_forced_whitening(&p, ch);
            assert_eq!(via.len(), direct.len());
            for (a, b) in via.iter().zip(&direct) {
                assert!((*a - *b).amplitude() < 1e-12);
            }
        }
    }

    #[test]
    fn prewhitening_is_involutive() {
        let bits: Vec<u8> = (0..200).map(|k| (k * 7 % 3 == 0) as u8).collect();
        let ch = BleChannel::new(8).unwrap();
        assert_eq!(prewhiten_bits(&prewhiten_bits(&bits, ch), ch), bits);
    }

    #[test]
    fn encoded_stream_length() {
        let p = ppdu(&[0u8; 10]);
        // 4+1+1+12 bytes → 36 symbols → 1152 chips → 1152 MSK bits + warm-up.
        assert_eq!(encode_ppdu_msk(&p).len(), TX_WARMUP_BITS + 1152);
    }

    #[test]
    fn max_length_frame_transmits() {
        let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let p = ppdu(&[0xA5; 125]);
        assert_eq!(p.psdu().len(), 127);
        let rx = Dot154Modem::new(8).receive(&tx.transmit(&p)).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
    }
}
