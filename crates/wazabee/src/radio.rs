//! The minimal radio interface the attack needs: raw bit transmit and
//! pattern-triggered raw capture at 2 Mbit/s.
//!
//! Both the BLE LE 2M modem and the Enhanced ShockBurst 2 Mbit/s modem
//! satisfy it — which is precisely the paper's point: the attack cares only
//! about the waveform, not the protocol the chip thinks it is speaking.

use wazabee_ble::gfsk::RawCapture;
use wazabee_ble::BleModem;
use wazabee_dsp::iq::Iq;
use wazabee_esb::EsbModem;

/// Raw FSK transmit/capture access, as diverted by WazaBee.
pub trait RawFskRadio {
    /// Modulates arbitrary bits with no framing.
    fn transmit_raw(&self, bits: &[u8]) -> Vec<Iq>;

    /// Captures up to `capture_bits` demodulated bits following `sync`
    /// (tolerating `max_sync_errors` mismatches in the pattern).
    fn receive_raw(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture>;

    /// The radio's symbol rate in symbols per second.
    fn symbol_rate(&self) -> f64;

    /// The simulation sample rate in samples per second.
    fn sample_rate(&self) -> f64;
}

impl RawFskRadio for BleModem {
    fn transmit_raw(&self, bits: &[u8]) -> Vec<Iq> {
        BleModem::transmit_raw(self, bits)
    }

    fn receive_raw(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        BleModem::receive_raw(self, samples, sync, max_sync_errors, capture_bits)
    }

    fn symbol_rate(&self) -> f64 {
        self.params().symbol_rate
    }

    fn sample_rate(&self) -> f64 {
        BleModem::sample_rate(self)
    }
}

impl RawFskRadio for EsbModem {
    fn transmit_raw(&self, bits: &[u8]) -> Vec<Iq> {
        EsbModem::transmit_raw(self, bits)
    }

    fn receive_raw(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        EsbModem::receive_raw(self, samples, sync, max_sync_errors, capture_bits)
    }

    fn symbol_rate(&self) -> f64 {
        self.params().symbol_rate
    }

    fn sample_rate(&self) -> f64 {
        EsbModem::sample_rate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::BlePhy;

    #[test]
    fn ble_le2m_satisfies_the_trait() {
        let modem = BleModem::new(BlePhy::Le2M, 8);
        let radio: &dyn RawFskRadio = &modem;
        assert_eq!(radio.symbol_rate(), 2.0e6);
        assert_eq!(radio.sample_rate(), 16.0e6);
        let iq = radio.transmit_raw(&[1, 0, 1, 1]);
        assert!(!iq.is_empty());
    }

    #[test]
    fn esb_2m_satisfies_the_trait() {
        let modem = EsbModem::new(8);
        let radio: &dyn RawFskRadio = &modem;
        assert_eq!(radio.symbol_rate(), 2.0e6);
    }

    #[test]
    fn ble_le1m_is_detectably_wrong_rate() {
        let modem = BleModem::new(BlePhy::Le1M, 8);
        assert_eq!(RawFskRadio::symbol_rate(&modem), 1.0e6);
    }
}
