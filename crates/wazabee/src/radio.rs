//! The minimal radio interface the attack needs: raw bit transmit and
//! pattern-triggered raw capture at 2 Mbit/s.
//!
//! Both the BLE LE 2M modem and the Enhanced ShockBurst 2 Mbit/s modem
//! satisfy it — which is precisely the paper's point: the attack cares only
//! about the waveform, not the protocol the chip thinks it is speaking.

use wazabee_ble::gfsk::RawCapture;
use wazabee_ble::BleModem;
use wazabee_dsp::iq::Iq;
use wazabee_dsp::IqSlice;
use wazabee_esb::EsbModem;

/// Raw FSK transmit/capture access, as diverted by WazaBee.
pub trait RawFskRadio {
    /// Modulates arbitrary bits with no framing.
    fn transmit_raw(&self, bits: &[u8]) -> Vec<Iq>;

    /// Captures up to `capture_bits` demodulated bits following `sync`
    /// (tolerating `max_sync_errors` mismatches in the pattern).
    fn receive_raw(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture>;

    /// Like [`RawFskRadio::receive_raw`], but resumes the sync search at bit
    /// `start_bit` of the demodulated stream — the re-arm entry point the
    /// streaming receiver builds on.
    fn receive_raw_from(
        &self,
        samples: &[Iq],
        start_bit: usize,
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture>;

    /// Demodulates a buffer into hard bits with the symbol clock anchored at
    /// the first sample — callers supply the sample-phase offset by slicing.
    fn demodulate_raw(&self, samples: &[Iq]) -> Vec<u8>;

    /// Appends the FM-discriminator first differences of a planar window to
    /// `out` (`samples.len() − 1` values, radians/sample).
    ///
    /// This is the planar streaming engine's demodulation contract: hard bit
    /// `b` of sample-phase lane `o` is the sign of
    /// `sum(diffs[o + b·sps .. o + (b+1)·sps])`, which for the GFSK modems in
    /// this workspace is exactly [`RawFskRadio::demodulate_raw`] evaluated at
    /// every lane at once — the discriminator's first differences do not
    /// depend on the symbol-clock phase, only the windowing does. A radio
    /// whose `demodulate_raw` is *not* discriminate-integrate-slice must
    /// override this to match, or its streamed bits would diverge from its
    /// one-shot bits.
    fn discriminate_planar_into(&self, samples: IqSlice<'_>, out: &mut Vec<f32>) {
        wazabee_dsp::simd::discriminate_planar_into(samples.i(), samples.q(), out);
    }

    /// Samples per symbol of the simulation.
    fn samples_per_symbol(&self) -> usize;

    /// The radio's symbol rate in symbols per second.
    fn symbol_rate(&self) -> f64;

    /// The simulation sample rate in samples per second.
    fn sample_rate(&self) -> f64;
}

impl RawFskRadio for BleModem {
    fn transmit_raw(&self, bits: &[u8]) -> Vec<Iq> {
        BleModem::transmit_raw(self, bits)
    }

    fn receive_raw(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        BleModem::receive_raw(self, samples, sync, max_sync_errors, capture_bits)
    }

    fn receive_raw_from(
        &self,
        samples: &[Iq],
        start_bit: usize,
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        BleModem::receive_raw_from(
            self,
            samples,
            start_bit,
            sync,
            max_sync_errors,
            capture_bits,
        )
    }

    fn demodulate_raw(&self, samples: &[Iq]) -> Vec<u8> {
        wazabee_ble::gfsk::demodulate_aligned(self.params(), samples, 0)
    }

    fn samples_per_symbol(&self) -> usize {
        self.params().samples_per_symbol
    }

    fn symbol_rate(&self) -> f64 {
        self.params().symbol_rate
    }

    fn sample_rate(&self) -> f64 {
        BleModem::sample_rate(self)
    }
}

impl RawFskRadio for EsbModem {
    fn transmit_raw(&self, bits: &[u8]) -> Vec<Iq> {
        EsbModem::transmit_raw(self, bits)
    }

    fn receive_raw(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        EsbModem::receive_raw(self, samples, sync, max_sync_errors, capture_bits)
    }

    fn receive_raw_from(
        &self,
        samples: &[Iq],
        start_bit: usize,
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        EsbModem::receive_raw_from(
            self,
            samples,
            start_bit,
            sync,
            max_sync_errors,
            capture_bits,
        )
    }

    fn demodulate_raw(&self, samples: &[Iq]) -> Vec<u8> {
        wazabee_ble::gfsk::demodulate_aligned(self.params(), samples, 0)
    }

    fn samples_per_symbol(&self) -> usize {
        self.params().samples_per_symbol
    }

    fn symbol_rate(&self) -> f64 {
        self.params().symbol_rate
    }

    fn sample_rate(&self) -> f64 {
        EsbModem::sample_rate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::BlePhy;

    #[test]
    fn ble_le2m_satisfies_the_trait() {
        let modem = BleModem::new(BlePhy::Le2M, 8);
        let radio: &dyn RawFskRadio = &modem;
        assert_eq!(radio.symbol_rate(), 2.0e6);
        assert_eq!(radio.sample_rate(), 16.0e6);
        let iq = radio.transmit_raw(&[1, 0, 1, 1]);
        assert!(!iq.is_empty());
    }

    #[test]
    fn esb_2m_satisfies_the_trait() {
        let modem = EsbModem::new(8);
        let radio: &dyn RawFskRadio = &modem;
        assert_eq!(radio.symbol_rate(), 2.0e6);
    }

    #[test]
    fn ble_le1m_is_detectably_wrong_rate() {
        let modem = BleModem::new(BlePhy::Le1M, 8);
        assert_eq!(RawFskRadio::symbol_rate(&modem), 1.0e6);
    }
}
