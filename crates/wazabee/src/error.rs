//! Error types of the WazaBee attack library.

use std::error::Error;
use std::fmt;

/// Why a WazaBee primitive could not be constructed or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum WazaBeeError {
    /// The radio's data rate is not the 2 Mbit/s the attack requires
    /// (paper §IV-D, requirement 1).
    UnsupportedDataRate {
        /// The radio's actual symbol rate in symbols per second.
        actual: f64,
    },
    /// The chip cannot tune to the requested frequency (requirement 2).
    ChannelUnavailable {
        /// The frequency that was requested, in MHz.
        requested_mhz: u32,
    },
    /// The chip does not expose control over the modulator input
    /// (requirement 3) or demodulator output (requirement 4).
    NoRawAccess {
        /// The capability that is missing.
        capability: &'static str,
    },
    /// The frame exceeds what the transport can carry.
    FrameTooLong {
        /// Actual length in bytes.
        len: usize,
        /// Maximum length in bytes.
        max: usize,
    },
    /// No 802.15.4 synchronisation header was found in the capture.
    NoSync,
    /// The access-address correlator fired, but the symbols that followed
    /// were not an 802.15.4 synchronisation header (bad SFD) — the match
    /// was a false positive, not a frame.
    SyncFalsePositive,
    /// A despread symbol decision exceeded the Hamming-distance budget set
    /// by `WazaBeeRx::with_max_despread_distance`.
    DespreadDistanceExceeded {
        /// The offending decision's Hamming distance (chips out of 31/32).
        distance: usize,
        /// The configured budget.
        max: usize,
    },
    /// The sync correlator fired, but more `0000` symbols followed than a
    /// standard 802.15.4 preamble contains — the capture window would run
    /// out before a frame of any legal length could complete.
    PreambleOverrun,
    /// The PHR announced a reserved frame length (≥ 128). Decoding it as a
    /// short frame by masking the length would silently misparse the PSDU,
    /// so the attempt is rejected instead.
    PhrReserved {
        /// The raw 8-bit PHR value as despread off the air.
        value: u8,
    },
    /// A frame was found but could not be parsed to completion.
    Truncated,
}

impl fmt::Display for WazaBeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WazaBeeError::UnsupportedDataRate { actual } => {
                write!(f, "radio runs at {actual} sym/s, attack needs 2e6")
            }
            WazaBeeError::ChannelUnavailable { requested_mhz } => {
                write!(f, "chip cannot tune to {requested_mhz} MHz")
            }
            WazaBeeError::NoRawAccess { capability } => {
                write!(f, "chip lacks required capability: {capability}")
            }
            WazaBeeError::FrameTooLong { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte maximum")
            }
            WazaBeeError::NoSync => write!(f, "no 802.15.4 synchronisation header found"),
            WazaBeeError::SyncFalsePositive => {
                write!(f, "sync correlator false positive: no SFD after preamble")
            }
            WazaBeeError::DespreadDistanceExceeded { distance, max } => {
                write!(
                    f,
                    "despread distance {distance} exceeds the configured budget of {max}"
                )
            }
            WazaBeeError::PreambleOverrun => {
                write!(f, "preamble overrun: too many zero-symbols after sync")
            }
            WazaBeeError::PhrReserved { value } => {
                write!(f, "PHR announces reserved length {value} (> 127)")
            }
            WazaBeeError::Truncated => write!(f, "frame truncated before completion"),
        }
    }
}

impl Error for WazaBeeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(WazaBeeError, &str)> = vec![
            (WazaBeeError::UnsupportedDataRate { actual: 1.0e6 }, "2e6"),
            (
                WazaBeeError::ChannelUnavailable {
                    requested_mhz: 2425,
                },
                "2425",
            ),
            (
                WazaBeeError::NoRawAccess {
                    capability: "crc disable",
                },
                "crc",
            ),
            (WazaBeeError::FrameTooLong { len: 300, max: 127 }, "300"),
            (WazaBeeError::NoSync, "synchronisation"),
            (WazaBeeError::SyncFalsePositive, "false positive"),
            (
                WazaBeeError::DespreadDistanceExceeded {
                    distance: 12,
                    max: 4,
                },
                "12",
            ),
            (WazaBeeError::PreambleOverrun, "preamble overrun"),
            (WazaBeeError::PhrReserved { value: 200 }, "200"),
            (WazaBeeError::Truncated, "truncated"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<WazaBeeError>();
    }
}
