//! Paper Algorithm 1: converting an O-QPSK PN sequence into its MSK
//! representation, plus the correspondence table of §IV-C.
//!
//! The algorithm walks the O-QPSK constellation (states `11 → 01 → 00 → 10`
//! counter-clockwise) and emits a `1` for every +π/2 transition and a `0` for
//! every −π/2 transition. A 32-chip sequence yields 31 MSK bits.
//!
//! The tests validate the algorithm against the waveform-exact conversion in
//! [`wazabee_dot154::msk`]: the outputs agree on every bit except, for
//! sequences whose first chip is 0, the very first transition — an artefact
//! of Algorithm 1's fixed initial state that costs at most one bit of
//! Hamming margin and is invisible to the attack in practice.

use wazabee_dot154::pn::PN_SEQUENCES;

/// Paper Algorithm 1, verbatim: converts one 32-chip PN sequence to its
/// 31-bit MSK sequence.
///
/// # Examples
///
/// ```
/// use wazabee::msk::pn_to_msk_algorithm1;
/// use wazabee_dot154::pn::pn_sequence;
/// let msk = pn_to_msk_algorithm1(pn_sequence(0));
/// assert_eq!(msk.len(), 31);
/// ```
pub fn pn_to_msk_algorithm1(oqpsk_sequence: &[u8; 32]) -> [u8; 31] {
    let even_states = [1u8, 0, 0, 1];
    let odd_states = [1u8, 1, 0, 0];
    let mut current_state: usize = 0;
    let mut msk = [0u8; 31];
    for i in 1..32 {
        let states = if i % 2 == 1 {
            &odd_states
        } else {
            &even_states
        };
        if oqpsk_sequence[i] == states[(current_state + 1) % 4] {
            current_state = (current_state + 1) % 4;
            msk[i - 1] = 1;
        } else {
            current_state = (current_state + 3) % 4; // −1 mod 4
            msk[i - 1] = 0;
        }
    }
    msk
}

/// The full correspondence table of §IV-C: the 31-bit MSK image of each of
/// the sixteen PN sequences, computed with Algorithm 1.
pub fn correspondence_table() -> [[u8; 31]; 16] {
    let mut table = [[0u8; 31]; 16];
    for (s, row) in table.iter_mut().enumerate() {
        *row = pn_to_msk_algorithm1(&PN_SEQUENCES[s]);
    }
    table
}

/// The Algorithm-1 correspondence table packed LSB-first into `u32` words —
/// one word per symbol, precomputed once. This is the shape the fast
/// despreading path consumes: a single XOR + `count_ones` per candidate.
pub fn correspondence_table_packed() -> &'static [u32; 16] {
    static TABLE: std::sync::OnceLock<[u32; 16]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let table = correspondence_table();
        std::array::from_fn(|s| wazabee_dsp::packed::pack_u32(&table[s]))
    })
}

/// Finds the symbol whose Algorithm-1 MSK sequence best matches a received
/// 31-bit block (minimum Hamming distance), returning `(symbol, distance)` —
/// the despreading step of the paper's reception primitive (§IV-D).
///
/// Thin shim over [`despread_msk_block_packed`] — it packs the block and
/// runs the word-wide comparison (this function runs once per received
/// symbol, thousands of times per benchmark frame batch).
///
/// # Panics
///
/// Panics if `bits` is not exactly 31 entries long.
pub fn despread_msk_block(bits: &[u8]) -> (u8, usize) {
    assert_eq!(bits.len(), 31, "expected a 31-bit MSK block");
    despread_msk_block_packed(wazabee_dsp::packed::pack_u32(bits))
}

/// Packed fast path of [`despread_msk_block`]: `block` holds the 31 MSK bits
/// LSB-first (bit 31 must be clear). Sixteen XOR + `count_ones` comparisons
/// against the packed correspondence table; ties resolve to the lowest
/// symbol value.
pub fn despread_msk_block_packed(block: u32) -> (u8, usize) {
    let table = correspondence_table_packed();
    let mut best = (0u8, usize::MAX);
    for (s, &row) in table.iter().enumerate() {
        let d = (block ^ row).count_ones() as usize;
        if d < best.1 {
            best = (s as u8, d);
        }
    }
    best
}

/// Reference scalar implementation of [`despread_msk_block`], retained for
/// property tests and micro-benchmarks against the packed fast path.
///
/// # Panics
///
/// Panics if `bits` is not exactly 31 entries long.
pub fn despread_msk_block_scalar(bits: &[u8]) -> (u8, usize) {
    assert_eq!(bits.len(), 31, "expected a 31-bit MSK block");
    static TABLE: std::sync::OnceLock<[[u8; 31]; 16]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(correspondence_table);
    let mut best = (0u8, usize::MAX);
    for (s, row) in table.iter().enumerate() {
        let d = wazabee_dsp::bits::hamming(bits, row);
        if d < best.1 {
            best = (s as u8, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wazabee_dot154::msk::{chips_to_msk, pn_msk_image};
    use wazabee_dot154::pn::pn_sequence;

    #[test]
    fn algorithm1_output_is_31_bits_of_zeros_and_ones() {
        for s in 0..16u8 {
            let msk = pn_to_msk_algorithm1(pn_sequence(s));
            assert!(msk.iter().all(|&b| b <= 1));
        }
    }

    #[test]
    fn algorithm1_matches_waveform_conversion_after_first_bit() {
        // Every bit except possibly the first must equal the waveform-exact
        // conversion, for all sixteen sequences.
        for s in 0..16u8 {
            let alg = pn_to_msk_algorithm1(pn_sequence(s));
            let wave = pn_msk_image(s);
            assert_eq!(&alg[1..], &wave[1..], "symbol {s} diverges beyond bit 0");
        }
    }

    #[test]
    fn algorithm1_first_bit_depends_on_initial_chip() {
        // When the sequence starts with chip 1 the fixed initial state '11'
        // is consistent and the first bit matches the waveform; when it
        // starts with chip 0 the first bit is complemented.
        for s in 0..16u8 {
            let alg = pn_to_msk_algorithm1(pn_sequence(s));
            let wave = pn_msk_image(s);
            if pn_sequence(s)[0] == 1 {
                assert_eq!(alg[0], wave[0], "symbol {s}");
            } else {
                assert_eq!(alg[0], wave[0] ^ 1, "symbol {s}");
            }
        }
    }

    #[test]
    fn table_rows_are_distinct() {
        let table = correspondence_table();
        for a in 0..16 {
            for b in (a + 1)..16 {
                assert_ne!(table[a], table[b], "rows {a} and {b} collide");
            }
        }
    }

    #[test]
    fn conjugate_rows_are_complementary() {
        // Inverting the odd chips of a PN sequence (symbol s ↔ s+8) flips
        // every phase transition.
        let table = correspondence_table();
        for s in 0..8usize {
            for (k, &bit) in table[s].iter().enumerate() {
                assert_eq!(bit ^ 1, table[s + 8][k], "symbol {s} bit {k}");
            }
        }
    }

    #[test]
    fn despreading_is_exact_on_clean_blocks() {
        let table = correspondence_table();
        for s in 0..16u8 {
            assert_eq!(despread_msk_block(&table[s as usize]), (s, 0));
        }
    }

    #[test]
    fn despreading_tolerates_bit_errors() {
        let table = correspondence_table();
        for s in 0..16u8 {
            let mut block = table[s as usize];
            for k in [2usize, 9, 17, 24, 30] {
                block[k] ^= 1;
            }
            let (sym, d) = despread_msk_block(&block);
            assert_eq!(sym, s, "symbol {s} lost after 5 bitflips");
            assert_eq!(d, 5);
        }
    }

    #[test]
    fn despreading_accepts_waveform_images_with_tiny_distance() {
        // Despreading waveform-exact images against the Algorithm-1 table
        // costs at most 1 bit — the attack's table works on real waveforms.
        for s in 0..16u8 {
            let (sym, d) = despread_msk_block(&pn_msk_image(s));
            assert_eq!(sym, s);
            assert!(d <= 1, "symbol {s} distance {d}");
        }
    }

    #[test]
    fn packed_despreading_agrees_with_scalar() {
        let table = correspondence_table();
        for (s, row) in table.iter().enumerate() {
            for flips in 0..=5usize {
                let mut block = *row;
                for k in 0..flips {
                    block[(k * 11) % 31] ^= 1;
                }
                let packed = wazabee_dsp::packed::pack_u32(&block);
                assert_eq!(
                    despread_msk_block_packed(packed),
                    despread_msk_block_scalar(&block),
                    "symbol {s} with {flips} flips"
                );
            }
        }
    }

    #[test]
    fn packed_table_matches_bit_table() {
        let bits = correspondence_table();
        let packed = correspondence_table_packed();
        for s in 0..16usize {
            assert_eq!(
                packed[s],
                wazabee_dsp::packed::pack_u32(&bits[s]),
                "row {s}"
            );
            assert_eq!(packed[s] >> 31, 0, "row {s} stray high bit");
        }
    }

    proptest! {
        #[test]
        fn prop_algorithm1_equals_closed_form_beyond_first_bit(
            chips in proptest::collection::vec(0u8..=1, 32),
        ) {
            // Algorithm 1 generalises to arbitrary 32-chip blocks; compare
            // against the closed-form waveform conversion.
            let arr: [u8; 32] = chips.clone().try_into().unwrap();
            let alg = pn_to_msk_algorithm1(&arr);
            let wave = chips_to_msk(&chips, false);
            prop_assert_eq!(&alg[1..], &wave[1..]);
            let expect_first = wave[0] ^ (chips[0] ^ 1);
            prop_assert_eq!(alg[0], expect_first);
        }
    }
}
