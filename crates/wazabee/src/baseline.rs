//! The cross-technology-communication baselines the paper compares against
//! (§II-B): BlueBee [Jiang et al., SenSys'17] for transmission and the
//! XBee cross-decoding receiver [Jiang et al., MobiCom'18] for reception.
//!
//! Both achieve BLE↔Zigbee communication, but both *require cooperation*:
//! BlueBee selects its channel through the hopping sequence of an
//! established BLE connection, and the XBee receiver only accepts frames
//! whose sender prepended a known identifier. These models make the
//! limitations executable so the comparison in the paper's related-work
//! discussion can be demonstrated, not just asserted.

use wazabee_ble::connection::{Connection, ConnectionParameters};
use wazabee_ble::{BleChannel, BleModem, BlePhy};
use wazabee_dot154::modem::ReceivedPpdu;
use wazabee_dot154::Ppdu;
use wazabee_dsp::iq::Iq;

use crate::rx::WazaBeeRx;
use crate::tx::WazaBeeTx;

/// Why a baseline CTC system cannot act right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineLimitation {
    /// BlueBee must be inside a BLE connection (a cooperating peer).
    RequiresConnection,
    /// The hop sequence decides the channel; the attacker cannot pick one.
    ChannelNotSelectable,
    /// The cross-decoding receiver needs the sender to prepend its marker.
    RequiresCooperativeSender,
}

impl std::fmt::Display for BaselineLimitation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineLimitation::RequiresConnection => {
                write!(f, "requires an established BLE connection")
            }
            BaselineLimitation::ChannelNotSelectable => {
                write!(f, "channel dictated by the hop sequence")
            }
            BaselineLimitation::RequiresCooperativeSender => {
                write!(f, "requires a cooperating sender marker")
            }
        }
    }
}

/// A BlueBee-style transmitter: Zigbee frame emulation from inside a BLE
/// connection's data channel hopping.
#[derive(Debug)]
pub struct BlueBeeTx {
    tx: WazaBeeTx<BleModem>,
    connection: Option<Connection>,
}

impl BlueBeeTx {
    /// Creates a transmitter with no connection.
    pub fn new(samples_per_symbol: usize) -> Self {
        BlueBeeTx {
            tx: WazaBeeTx::new(BleModem::new(BlePhy::Le2M, samples_per_symbol))
                .expect("LE 2M is 2 Mbit/s"),
            connection: None,
        }
    }

    /// Models the cooperation BlueBee depends on: a peer accepting a BLE
    /// connection (the `CONNECT_IND` parameters a real initiator would send).
    pub fn connect(&mut self, params: ConnectionParameters) {
        self.connection = Some(Connection::new(params));
    }

    /// Transmits a Zigbee frame in the next connection event.
    ///
    /// The channel comes out of the hopping algorithm — the caller learns
    /// which BLE channel was used but never chooses it (the limitation that
    /// rules BlueBee out for attacks, paper §II-B).
    ///
    /// # Errors
    ///
    /// [`BaselineLimitation::RequiresConnection`] without a connected peer.
    pub fn transmit_next_event(
        &mut self,
        ppdu: &Ppdu,
    ) -> Result<(BleChannel, Vec<Iq>), BaselineLimitation> {
        let conn = self
            .connection
            .as_mut()
            .ok_or(BaselineLimitation::RequiresConnection)?;
        let channel = conn.next_event_channel();
        Ok((channel, self.tx.transmit(ppdu)))
    }

    /// What requesting a *specific* channel returns: the limitation itself.
    pub fn transmit_on_channel(
        &mut self,
        _ppdu: &Ppdu,
        _channel: BleChannel,
    ) -> Result<Vec<Iq>, BaselineLimitation> {
        if self.connection.is_none() {
            return Err(BaselineLimitation::RequiresConnection);
        }
        Err(BaselineLimitation::ChannelNotSelectable)
    }
}

/// The 4-byte marker a cooperating sender prepends for the cross-decoding
/// receiver.
pub const XBEE_CTC_MARKER: [u8; 4] = [0x58, 0x43, 0x54, 0x43]; // "XCTC"

/// An XBee-style cross-decoding receiver: BLE frames recovered through a
/// Zigbee chip — but only from senders that announce themselves.
#[derive(Debug)]
pub struct XBeeCtcRx {
    rx: WazaBeeRx<BleModem>,
}

impl XBeeCtcRx {
    /// Creates a receiver.
    pub fn new(samples_per_symbol: usize) -> Self {
        XBeeCtcRx {
            rx: WazaBeeRx::new(BleModem::new(BlePhy::Le2M, samples_per_symbol))
                .expect("LE 2M is 2 Mbit/s"),
        }
    }

    /// Receives a frame, accepting it only when the payload starts with
    /// [`XBEE_CTC_MARKER`].
    ///
    /// # Errors
    ///
    /// [`BaselineLimitation::RequiresCooperativeSender`] when the marker is
    /// absent — the reason this receiver cannot sniff arbitrary traffic.
    pub fn receive(&self, samples: &[Iq]) -> Result<ReceivedPpdu, BaselineLimitation> {
        let ppdu = self
            .rx
            .receive(samples)
            .ok_or(BaselineLimitation::RequiresCooperativeSender)?;
        let Some(mac) = ppdu.mac_frame() else {
            return Err(BaselineLimitation::RequiresCooperativeSender);
        };
        // The marker sits right after frame control + sequence number.
        if mac.len() < 7 || mac[3..7] != XBEE_CTC_MARKER {
            return Err(BaselineLimitation::RequiresCooperativeSender);
        }
        Ok(ppdu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::csa2::ChannelMap;
    use wazabee_dot154::fcs::append_fcs;
    use wazabee_dot154::Dot154Modem;

    fn ppdu(payload: &[u8]) -> Ppdu {
        Ppdu::new(append_fcs(payload)).unwrap()
    }

    fn test_params(access_address: u32) -> ConnectionParameters {
        ConnectionParameters {
            access_address,
            crc_init: 0x123456,
            interval_1_25ms: 24,
            latency: 0,
            timeout_10ms: 100,
            channel_map: ChannelMap::all_data_channels(),
        }
    }

    #[test]
    fn bluebee_needs_cooperation() {
        let mut bb = BlueBeeTx::new(8);
        assert_eq!(
            bb.transmit_next_event(&ppdu(&[1])).unwrap_err(),
            BaselineLimitation::RequiresConnection
        );
    }

    #[test]
    fn bluebee_cannot_choose_its_channel() {
        let mut bb = BlueBeeTx::new(8);
        bb.connect(test_params(0xCAFE_D00D));
        let want = BleChannel::new(8).unwrap();
        assert_eq!(
            bb.transmit_on_channel(&ppdu(&[1]), want).unwrap_err(),
            BaselineLimitation::ChannelNotSelectable
        );
    }

    #[test]
    fn bluebee_frames_do_decode_when_the_hop_lands_right() {
        // The emulation itself is sound — the limitation is purely the
        // channel control, as the paper says.
        let mut bb = BlueBeeTx::new(8);
        bb.connect(test_params(0x1234_5678));
        let p = ppdu(&[9, 9]);
        let (channel, air) = bb.transmit_next_event(&p).unwrap();
        assert!(channel.is_data());
        let rx = Dot154Modem::new(8).receive(&air).unwrap();
        assert_eq!(rx.psdu, p.psdu());
    }

    #[test]
    fn ctc_rx_rejects_unmarked_traffic() {
        // A legitimate Zigbee frame (no marker) is invisible to the
        // cross-decoding receiver — it cannot sniff.
        let p = ppdu(&[0x41, 0x88, 0x01, 0x12, 0x34]);
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = XBeeCtcRx::new(8);
        assert_eq!(
            rx.receive(&air).unwrap_err(),
            BaselineLimitation::RequiresCooperativeSender
        );
    }

    #[test]
    fn ctc_rx_accepts_marked_traffic() {
        let mut payload = vec![0x41, 0x88, 0x01];
        payload.extend_from_slice(&XBEE_CTC_MARKER);
        payload.extend_from_slice(&[1, 2, 3]);
        let p = ppdu(&payload);
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = XBeeCtcRx::new(8);
        let got = rx.receive(&air).unwrap();
        assert_eq!(got.psdu, p.psdu());
    }

    #[test]
    fn limitations_display() {
        assert!(BaselineLimitation::RequiresConnection
            .to_string()
            .contains("connection"));
        assert!(BaselineLimitation::ChannelNotSelectable
            .to_string()
            .contains("hop"));
        assert!(BaselineLimitation::RequiresCooperativeSender
            .to_string()
            .contains("sender"));
    }
}
