//! Scenario A (paper §VI-B): injecting 802.15.4 frames from an unrooted
//! smartphone.
//!
//! With nothing but the public extended-advertising API, the attacker:
//!
//! 1. encodes the target 802.15.4 frame as MSK bits,
//! 2. prepends 16 padding bytes (the headers the controller will put ahead
//!    of the manufacturer data), de-whitens the whole thing for the BLE
//!    channel that shares the target Zigbee channel's frequency, and crops
//!    the padding,
//! 3. hands the result to the advertising API and enables extended
//!    advertising with the smallest interval.
//!
//! Whenever Channel Selection Algorithm #2 lands the `AUX_ADV_IND` on the
//! hoped-for channel, the controller's whitening restores the MSK bits and
//! the Zigbee receiver decodes a pristine frame.

use wazabee_ble::adv::AUX_ADV_MANUFACTURER_PADDING;
use wazabee_ble::whitening::Whitener;
use wazabee_ble::BleChannel;
use wazabee_chips::{Smartphone, MAX_MANUFACTURER_DATA};
use wazabee_dot154::modem::ReceivedPpdu;
use wazabee_dot154::{Dot154Channel, Dot154Modem, Ppdu};
use wazabee_dsp::bits::bits_to_bytes_lsb;
use wazabee_radio::{Link, RfFrame};

use crate::channels::ble_channel_for_zigbee;
use crate::error::WazaBeeError;
use crate::tx::encode_ppdu_msk;

/// Builds the manufacturer-data bytes that make an `AUX_ADV_IND` on
/// `ble_channel` carry `ppdu` as a decodable 802.15.4 frame.
///
/// # Errors
///
/// [`WazaBeeError::FrameTooLong`] when the encoded frame exceeds the
/// advertising payload capacity.
pub fn craft_manufacturer_data(
    ppdu: &Ppdu,
    ble_channel: BleChannel,
) -> Result<Vec<u8>, WazaBeeError> {
    let msk_bytes = bits_to_bytes_lsb(&encode_ppdu_msk(ppdu));
    if msk_bytes.len() > MAX_MANUFACTURER_DATA {
        return Err(WazaBeeError::FrameTooLong {
            len: msk_bytes.len(),
            max: MAX_MANUFACTURER_DATA,
        });
    }
    // Paper §VI-B: pad with the bytes that will precede the data on the PDU,
    // de-whiten for the target channel, crop the padding.
    let mut padded = vec![0u8; AUX_ADV_MANUFACTURER_PADDING];
    padded.extend_from_slice(&msk_bytes);
    let dewhitened = Whitener::new(ble_channel).whiten_bytes(&padded);
    Ok(dewhitened[AUX_ADV_MANUFACTURER_PADDING..].to_vec())
}

/// Outcome of one advertising event during the injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum EventOutcome {
    /// CSA#2 picked a channel that does not overlap the target.
    WrongChannel(BleChannel),
    /// The aux packet went out on the target frequency and the reference
    /// 802.15.4 receiver decoded the embedded frame.
    Injected(ReceivedPpdu),
    /// On the target frequency, but the receiver failed to decode (channel
    /// impairments).
    NotDecoded,
}

/// The Scenario A campaign driver.
///
/// # Examples
///
/// ```
/// use wazabee::scenario_a::ScenarioA;
/// use wazabee_ble::adv::BleAddress;
/// use wazabee_chips::Smartphone;
/// use wazabee_dot154::{fcs::append_fcs, Dot154Channel, Ppdu};
/// use wazabee_radio::{Link, LinkConfig};
///
/// let phone = Smartphone::new(BleAddress::new([2, 0, 0, 0, 0, 1]), 8);
/// let target = Dot154Channel::new(14).unwrap();
/// let mut scenario = ScenarioA::new(phone, target, 8).unwrap();
/// scenario.arm(&Ppdu::new(append_fcs(&[0x42])).unwrap()).unwrap();
/// let mut link = Link::new(LinkConfig::ideal(), 7);
/// let outcomes = scenario.run_events(150, &mut link);
/// assert!(outcomes.iter().any(|o| matches!(o, wazabee::scenario_a::EventOutcome::Injected(_))));
/// ```
#[derive(Debug)]
pub struct ScenarioA {
    phone: Smartphone,
    target_zigbee: Dot154Channel,
    target_ble: BleChannel,
    receiver: Dot154Modem,
}

impl ScenarioA {
    /// Prepares the campaign against a Zigbee channel.
    ///
    /// # Errors
    ///
    /// [`WazaBeeError::ChannelUnavailable`] when the Zigbee channel shares no
    /// frequency with a BLE data channel (paper Table II: only even Zigbee
    /// channels qualify).
    pub fn new(
        phone: Smartphone,
        target: Dot154Channel,
        samples_per_chip: usize,
    ) -> Result<Self, WazaBeeError> {
        let target_ble =
            ble_channel_for_zigbee(target).ok_or(WazaBeeError::ChannelUnavailable {
                requested_mhz: target.center_mhz(),
            })?;
        if !target_ble.is_data() {
            // Advertising channel 39 is never selected by CSA#2 for aux
            // packets, so Zigbee 26 is unreachable from the high-level API.
            return Err(WazaBeeError::ChannelUnavailable {
                requested_mhz: target.center_mhz(),
            });
        }
        Ok(ScenarioA {
            phone,
            target_zigbee: target,
            target_ble,
            receiver: Dot154Modem::new(samples_per_chip),
        })
    }

    /// The Zigbee channel under attack.
    pub fn target(&self) -> Dot154Channel {
        self.target_zigbee
    }

    /// The BLE channel whose whitening the crafted data pre-inverts.
    pub fn target_ble_channel(&self) -> BleChannel {
        self.target_ble
    }

    /// Crafts the advertising data for `ppdu` and hands it to the phone's
    /// public API.
    ///
    /// # Errors
    ///
    /// [`WazaBeeError::FrameTooLong`] when the frame cannot fit.
    pub fn arm(&mut self, ppdu: &Ppdu) -> Result<(), WazaBeeError> {
        let data = craft_manufacturer_data(ppdu, self.target_ble)?;
        let len = data.len();
        self.phone
            .set_manufacturer_data(data)
            .map_err(|rejected| WazaBeeError::FrameTooLong {
                len: rejected.len().max(len),
                max: MAX_MANUFACTURER_DATA,
            })
    }

    /// Runs one advertising event and reports what the Zigbee receiver saw.
    pub fn run_event(&mut self, link: &mut Link) -> EventOutcome {
        let _s = wazabee_telemetry::span!("scenario_a.event");
        wazabee_telemetry::counter!("scenario_a.events").inc();
        let Some(event) = self.phone.advertising_event() else {
            return EventOutcome::NotDecoded;
        };
        let aux_mhz = event.aux_channel.center_mhz();
        let target_mhz = self.target_zigbee.center_mhz();
        if aux_mhz != target_mhz {
            wazabee_telemetry::counter!("scenario_a.wrong_channel").inc();
            return EventOutcome::WrongChannel(event.aux_channel);
        }
        // On the target frequency: this event is an injection attempt.
        wazabee_telemetry::counter!("scenario_a.frames_tx").inc();
        // The phone's LE 2M modem and the 802.15.4 receiver share the same
        // 2 Msym/s × samples_per_chip grid, so one sample rate labels both.
        let frame = RfFrame::new(aux_mhz, event.aux_samples, self.receiver.sample_rate());
        let rx = link.deliver(&frame, target_mhz);
        match self.receiver.receive(&rx) {
            Some(ppdu) if ppdu.fcs_ok() => {
                wazabee_telemetry::counter!("scenario_a.frames_ok").inc();
                EventOutcome::Injected(ppdu)
            }
            _ => {
                wazabee_telemetry::counter!("scenario_a.not_decoded").inc();
                EventOutcome::NotDecoded
            }
        }
    }

    /// Runs `n` advertising events, collecting each outcome.
    pub fn run_events(&mut self, n: usize, link: &mut Link) -> Vec<EventOutcome> {
        (0..n).map(|_| self.run_event(link)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::adv::BleAddress;
    use wazabee_dot154::fcs::append_fcs;
    use wazabee_dot154::MacFrame;
    use wazabee_radio::LinkConfig;

    fn phone(seed: u8) -> Smartphone {
        Smartphone::new(BleAddress::new([seed, 2, 3, 4, 5, 6]), 8)
    }

    fn ch(n: u8) -> Dot154Channel {
        Dot154Channel::new(n).unwrap()
    }

    #[test]
    fn odd_zigbee_channels_rejected() {
        let err = ScenarioA::new(phone(1), ch(15), 8).unwrap_err();
        assert!(matches!(err, WazaBeeError::ChannelUnavailable { .. }));
    }

    #[test]
    fn zigbee_26_needs_more_than_the_high_level_api() {
        // Its BLE twin is advertising channel 39, which CSA#2 never picks.
        let err = ScenarioA::new(phone(1), ch(26), 8).unwrap_err();
        assert!(matches!(err, WazaBeeError::ChannelUnavailable { .. }));
    }

    #[test]
    fn crafted_data_round_trips_through_whitening() {
        // whiten(craft(x)) must equal the MSK image of x at the right offset.
        let ppdu = Ppdu::new(append_fcs(&[1, 2, 3])).unwrap();
        let ble8 = BleChannel::new(8).unwrap();
        let data = craft_manufacturer_data(&ppdu, ble8).unwrap();
        let mut padded = vec![0u8; AUX_ADV_MANUFACTURER_PADDING];
        padded.extend_from_slice(&data);
        let rewhitened = Whitener::new(ble8).whiten_bytes(&padded);
        let expect = bits_to_bytes_lsb(&encode_ppdu_msk(&ppdu));
        assert_eq!(
            &rewhitened[AUX_ADV_MANUFACTURER_PADDING..],
            expect.as_slice()
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let ppdu = Ppdu::new(append_fcs(&[0; 70])).unwrap();
        let err = craft_manufacturer_data(&ppdu, BleChannel::new(8).unwrap()).unwrap_err();
        assert!(matches!(err, WazaBeeError::FrameTooLong { .. }));
    }

    #[test]
    fn injection_succeeds_when_csa2_cooperates() {
        let frame = MacFrame::data(0x1234, 0x0063, 0x0042, 1, vec![0xAB, 0xCD]);
        let ppdu = Ppdu::new(frame.to_psdu()).unwrap();
        let mut scenario = ScenarioA::new(phone(2), ch(14), 8).unwrap();
        scenario.arm(&ppdu).unwrap();
        let mut link = Link::new(LinkConfig::ideal(), 3);
        let outcomes = scenario.run_events(120, &mut link);
        let injected: Vec<_> = outcomes
            .iter()
            .filter_map(|o| match o {
                EventOutcome::Injected(p) => Some(p),
                _ => None,
            })
            .collect();
        assert!(!injected.is_empty(), "no event hit the target channel");
        for p in &injected {
            assert_eq!(p.psdu, ppdu.psdu());
            assert_eq!(MacFrame::from_psdu(&p.psdu).as_ref(), Some(&frame));
        }
        // Never a decode failure on an ideal link: on-target means injected.
        assert!(!outcomes.contains(&EventOutcome::NotDecoded));
    }

    #[test]
    fn hit_rate_is_roughly_one_in_37() {
        let ppdu = Ppdu::new(append_fcs(&[7])).unwrap();
        let mut scenario = ScenarioA::new(phone(3), ch(20), 8).unwrap();
        scenario.arm(&ppdu).unwrap();
        let mut link = Link::new(LinkConfig::ideal(), 4);
        let outcomes = scenario.run_events(370, &mut link);
        let hits = outcomes
            .iter()
            .filter(|o| matches!(o, EventOutcome::Injected(_)))
            .count();
        // Expectation is 10; allow a generous band.
        assert!((3..=25).contains(&hits), "{hits} hits out of 370 events");
    }

    #[test]
    fn unarmed_phone_never_injects() {
        let mut scenario = ScenarioA::new(phone(4), ch(14), 8).unwrap();
        let mut link = Link::new(LinkConfig::ideal(), 5);
        let outcomes = scenario.run_events(5, &mut link);
        assert!(outcomes.iter().all(|o| *o == EventOutcome::NotDecoded));
    }
}
