#![warn(missing_docs)]

//! # wazabee
//!
//! A software reproduction of **WazaBee** (Cayre, Galtier, Auriol,
//! Nicomette, Kaâniche, Marconato — *WazaBee: attacking Zigbee networks by
//! diverting Bluetooth Low Energy chips*, IEEE/IFIP DSN 2021).
//!
//! WazaBee is a cross-protocol pivoting attack: arbitrary code on a BLE-only
//! radio transmits and receives IEEE 802.15.4 (Zigbee) frames by exploiting
//! the waveform equivalence between BLE's GFSK at 2 Mbit/s and 802.15.4's
//! O-QPSK with half-sine pulse shaping — both are MSK under a chip-to-phase
//! re-encoding.
//!
//! This crate implements the attack over the simulated radios of the
//! companion crates:
//!
//! * [`msk`] — the paper's Algorithm 1 and the §IV-C correspondence table,
//! * [`channels`] — the Zigbee↔BLE common-channel map (paper Table II),
//! * [`tx`] / [`rx`] — the transmission and reception primitives (§IV-D),
//! * [`stream`] — chunk-fed streaming reception that re-arms the sync
//!   search after every failed attempt instead of abandoning the capture,
//! * [`radio`] — the minimal raw-radio interface they require.
//!
//! ## Example: a BLE chip speaking Zigbee
//!
//! ```
//! use wazabee::{WazaBeeRx, WazaBeeTx};
//! use wazabee_ble::{BleModem, BlePhy};
//! use wazabee_dot154::{fcs::append_fcs, MacFrame, Ppdu};
//!
//! let frame = MacFrame::data(0x1234, 0x0063, 0x0042, 1, vec![21]);
//! let ppdu = Ppdu::new(frame.to_psdu()).unwrap();
//!
//! // Two diverted BLE LE 2M radios form a full 802.15.4 link.
//! let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
//! let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
//! let received = rx.receive(&tx.transmit(&ppdu)).unwrap();
//! assert!(received.fcs_ok());
//! assert_eq!(MacFrame::from_psdu(&received.psdu), Some(frame));
//! ```

pub mod baseline;
pub mod channels;
pub mod error;
pub mod exfil;
pub mod msk;
pub mod radio;
pub mod rx;
pub mod scenario_a;
pub mod scenario_b;
pub mod similarity;
pub mod stream;
pub mod tx;

pub use channels::{
    ble_channel_for_zigbee, common_channels, zigbee_channel_for_ble, CommonChannel,
};
pub use error::WazaBeeError;
pub use radio::RawFskRadio;
pub use rx::{access_address_pattern, access_address_value, DespreadTable, WazaBeeRx};
pub use scenario_a::ScenarioA;
pub use scenario_b::{AttackReport, TrackerAttack};
pub use similarity::{cross_similarity, similarity_matrix, SimilarityScore, WaveformFamily};
pub use stream::StreamingRx;
pub use tx::{encode_ppdu_msk, prewhiten_bits, WazaBeeTx};
