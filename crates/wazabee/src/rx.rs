//! The WazaBee reception primitive (paper §IV-D).
//!
//! The diverted chip's access-address correlator is programmed with the MSK
//! image of the 802.15.4 `0000` symbol, CRC checking is disabled, and the
//! capture length is maxed out. Each captured 32-bit block is then matched
//! against the sixteen MSK images by Hamming distance to recover symbols —
//! tolerating both the GMSK≈MSK approximation error and channel bitflips.

use wazabee_dot154::modem::ReceivedPpdu;
use wazabee_dot154::msk::{boundary_msk_bit, closest_symbol_msk_packed, pn_msk_image};
use wazabee_dot154::pn::pn_sequence;
use wazabee_dsp::PackedBits;
use wazabee_flightrec::{FrameKind, RxFailure, TraceHandle};

use crate::error::WazaBeeError;
use crate::msk::despread_msk_block_packed;
use crate::radio::RawFskRadio;

/// Maps a reception error to its flight-recorder failure classification.
fn rx_failure(e: &WazaBeeError) -> RxFailure {
    match e {
        WazaBeeError::NoSync => RxFailure::NoSync,
        WazaBeeError::SyncFalsePositive => RxFailure::SyncFalsePositive,
        WazaBeeError::DespreadDistanceExceeded { .. } => RxFailure::DespreadDistanceExceeded,
        // No other variant escapes try_receive_impl; Truncated covers the rest.
        _ => RxFailure::TruncatedFrame,
    }
}

/// Which correspondence table despreading uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DespreadTable {
    /// The paper's Algorithm-1 table (§IV-C) — faithful to the original
    /// implementation, at most one bit of distance from the waveform truth.
    #[default]
    Algorithm1,
    /// The waveform-exact MSK images — the ablation alternative.
    Waveform,
}

/// The 32-bit sync pattern for the diverted access-address correlator: the
/// boundary transition between two consecutive `0000` symbols followed by
/// the 31-bit MSK image of the `0000` PN sequence.
///
/// Because the 802.15.4 preamble is eight `0000` symbols, this pattern
/// repeats throughout the preamble and guarantees symbol-aligned sync.
pub fn access_address_pattern() -> Vec<u8> {
    let pn0 = pn_sequence(0);
    let mut bits = vec![boundary_msk_bit(pn0[31], pn0[0], false)];
    bits.extend(pn_msk_image(0));
    bits
}

/// The same pattern packed as the 32-bit value a real chip's access-address
/// register would hold (first-transmitted bit in the least significant
/// position, as BLE serialises access addresses).
pub fn access_address_value() -> u32 {
    access_address_pattern()
        .iter()
        .enumerate()
        .fold(0u32, |acc, (k, &b)| acc | (u32::from(b) << k))
}

/// Estimates the carrier-frequency offset of a capture window, in Hz: the
/// mean discriminator output over (up to) the first 8192 samples. MSK's
/// symmetric ±deviation averages out over the alternating preamble, leaving
/// the residual carrier offset — a coarse but useful forensic figure.
///
/// Only computed when a flight-recorder trace is active; returns `None` for
/// windows too short to difference.
fn estimate_cfo_hz(samples: &[wazabee_dsp::Iq], sample_rate: f64) -> Option<f64> {
    const CFO_WINDOW: usize = 8192;
    let window = &samples[..samples.len().min(CFO_WINDOW)];
    let mean = wazabee_dsp::discriminator::mean_frequency(window)?;
    Some(mean * sample_rate / std::f64::consts::TAU)
}

/// The WazaBee reception primitive bound to a diverted radio.
///
/// # Examples
///
/// ```
/// use wazabee::{WazaBeeRx, WazaBeeTx};
/// use wazabee_ble::{BleModem, BlePhy};
/// use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
///
/// // A genuine 802.15.4 transmitter, received by a diverted BLE chip.
/// let ppdu = Ppdu::new(append_fcs(&[1, 2, 3])).unwrap();
/// let air = Dot154Modem::new(8).transmit(&ppdu);
/// let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
/// let frame = rx.receive(&air).unwrap();
/// assert_eq!(frame.psdu, ppdu.psdu());
/// assert!(frame.fcs_ok());
/// ```
#[derive(Debug, Clone)]
pub struct WazaBeeRx<R> {
    radio: R,
    table: DespreadTable,
    max_sync_errors: usize,
    max_despread_distance: Option<usize>,
    /// The diverted access-address sync pattern, computed once at
    /// construction — real hardware programs its correlator register once,
    /// and the software model should not rebuild the pattern per receive.
    sync_bits: Vec<u8>,
}

/// Upper bound on captured bits: enough for the remaining preamble, SFD,
/// PHR and a maximum-length PSDU.
const MAX_CAPTURE_BITS: usize = (8 + 2 + 2 + 2 * 127) * 32 + 64;

/// How many leading `0000` symbols may follow the sync match before the SFD
/// must appear. The preamble is 8 symbols and the sync pattern consumes at
/// least one of them, so at most 7 whole `0000` symbols can remain.
const MAX_PREAMBLE_SYMBOLS: usize = 7;

impl<R: RawFskRadio> WazaBeeRx<R> {
    /// Binds the primitive to a radio, verifying the 2 Mbit/s requirement.
    ///
    /// # Errors
    ///
    /// Returns [`WazaBeeError::UnsupportedDataRate`] when the radio does not
    /// run at 2 Msym/s.
    pub fn new(radio: R) -> Result<Self, WazaBeeError> {
        let rate = radio.symbol_rate();
        if (rate - 2.0e6).abs() > 1.0 {
            return Err(WazaBeeError::UnsupportedDataRate { actual: rate });
        }
        Ok(WazaBeeRx {
            radio,
            table: DespreadTable::Algorithm1,
            max_sync_errors: 3,
            max_despread_distance: None,
            sync_bits: access_address_pattern(),
        })
    }

    /// Selects the despreading table (ablation knob).
    pub fn with_table(mut self, table: DespreadTable) -> Self {
        self.table = table;
        self
    }

    /// Adjusts the access-address correlator tolerance (bits out of 32).
    pub fn with_max_sync_errors(mut self, max: usize) -> Self {
        self.max_sync_errors = max;
        self
    }

    /// Sets a Hamming-distance budget for despread symbol decisions: any
    /// decision farther than `max` chips from its nearest MSK image aborts
    /// the frame with [`WazaBeeError::DespreadDistanceExceeded`].
    ///
    /// The paper's receiver accepts the nearest image unconditionally
    /// (the default, `None`); the budget turns silent symbol guesses under
    /// heavy noise into a typed, observable failure.
    pub fn with_max_despread_distance(mut self, max: usize) -> Self {
        self.max_despread_distance = Some(max);
        self
    }

    /// The underlying radio.
    pub fn radio(&self) -> &R {
        &self.radio
    }

    fn despread(&self, block: u32, tr: &mut TraceHandle) -> Result<(u8, usize), WazaBeeError> {
        let decision = match self.table {
            DespreadTable::Algorithm1 => despread_msk_block_packed(block),
            DespreadTable::Waveform => closest_symbol_msk_packed(block),
        };
        wazabee_telemetry::counter!("wazabee.rx.despread.symbols").inc();
        wazabee_telemetry::value_histogram!("wazabee.rx.despread_hamming", 0.0, 32.0)
            .record(decision.1 as f64);
        tr.despread(decision.1);
        if let Some(max) = self.max_despread_distance {
            if decision.1 > max {
                return Err(WazaBeeError::DespreadDistanceExceeded {
                    distance: decision.1,
                    max,
                });
            }
        }
        Ok(decision)
    }

    /// Attempts to receive one 802.15.4 frame from a capture buffer.
    ///
    /// Every attempt is recorded by the flight recorder (when one is
    /// installed — see `wazabee-flightrec`): sync quality, CFO estimate,
    /// per-symbol despread distances, and the typed failure reason or the
    /// delivered frame.
    ///
    /// # Errors
    ///
    /// [`WazaBeeError::NoSync`] when the preamble pattern is absent,
    /// [`WazaBeeError::SyncFalsePositive`] when the correlator match is not
    /// followed by an SFD, [`WazaBeeError::DespreadDistanceExceeded`] when a
    /// configured despreading budget is blown, and
    /// [`WazaBeeError::Truncated`] when the capture ends mid-frame.
    pub fn try_receive(&self, samples: &[wazabee_dsp::Iq]) -> Result<ReceivedPpdu, WazaBeeError> {
        let mut tr = wazabee_flightrec::begin("wazabee.rx");
        if tr.active() {
            tr.tap_iq(samples, self.radio.sample_rate(), None);
            if let Some(cfo) = estimate_cfo_hz(samples, self.radio.sample_rate()) {
                tr.cfo_hz(cfo);
            }
        }
        let result = self.try_receive_impl(samples, &mut tr);
        match &result {
            Ok(rx) => {
                let fcs = rx.fcs_ok();
                if fcs {
                    wazabee_telemetry::counter!("wazabee.rx.fcs.ok").inc();
                } else {
                    wazabee_telemetry::counter!("wazabee.rx.fcs.fail").inc();
                    wazabee_telemetry::counter!("wazabee.rx.fail.fcs").inc();
                }
                tr.deliver(&rx.psdu, fcs, FrameKind::Dot154);
            }
            Err(e) => {
                match e {
                    WazaBeeError::NoSync => {
                        wazabee_telemetry::counter!("wazabee.rx.sync.miss").inc();
                        wazabee_telemetry::counter!("wazabee.rx.fail.no_sync").inc();
                    }
                    WazaBeeError::SyncFalsePositive => {
                        wazabee_telemetry::counter!("wazabee.rx.fail.sync_false_positive").inc();
                    }
                    WazaBeeError::DespreadDistanceExceeded { .. } => {
                        wazabee_telemetry::counter!("wazabee.rx.fail.despread_distance").inc();
                    }
                    WazaBeeError::Truncated => {
                        wazabee_telemetry::counter!("wazabee.rx.truncated").inc();
                        wazabee_telemetry::counter!("wazabee.rx.fail.truncated").inc();
                    }
                    _ => {}
                }
                tr.fail(rx_failure(e));
            }
        }
        result
    }

    fn try_receive_impl(
        &self,
        samples: &[wazabee_dsp::Iq],
        tr: &mut TraceHandle,
    ) -> Result<ReceivedPpdu, WazaBeeError> {
        let _t = wazabee_telemetry::timed_scope!("wazabee.rx.receive_ns");
        let capture = self
            .radio
            .receive_raw(
                samples,
                &self.sync_bits,
                self.max_sync_errors,
                MAX_CAPTURE_BITS,
            )
            .ok_or(WazaBeeError::NoSync)?;
        wazabee_telemetry::counter!("wazabee.rx.sync.hit").inc();
        tr.sync(
            capture.sync_errors,
            capture.sync_bit_index,
            capture.sample_offset,
            self.sync_bits.len(),
        );
        // Pack the capture once; every despread decision then pulls its
        // 31-bit block straight out of the words.
        let bits = PackedBits::from_bits(&capture.bits);
        // The capture is a sequence of 32-bit blocks: [boundary, 31-bit image].
        let block = |k: usize| -> Result<u32, WazaBeeError> {
            let start = k * 32 + 1;
            let end = start + 31;
            if end <= bits.len() {
                Ok(bits.extract_u32(start, 31))
            } else {
                Err(WazaBeeError::Truncated)
            }
        };
        // Skip remaining preamble symbols, then expect the SFD pair (7, A).
        let mut k = 0usize;
        let mut chip_errors = 0usize;
        loop {
            let (sym, errs) = self.despread(block(k)?, tr)?;
            k += 1;
            if sym == 0 {
                if k > MAX_PREAMBLE_SYMBOLS {
                    return Err(WazaBeeError::Truncated);
                }
                chip_errors += errs;
                continue;
            }
            if sym != 0x7 {
                return Err(WazaBeeError::SyncFalsePositive);
            }
            chip_errors += errs;
            break;
        }
        let (sfd_hi, errs) = self.despread(block(k)?, tr)?;
        k += 1;
        if sfd_hi != 0xA {
            return Err(WazaBeeError::SyncFalsePositive);
        }
        chip_errors += errs;
        // PHR: frame length.
        let (len_lo, e1) = self.despread(block(k)?, tr)?;
        let (len_hi, e2) = self.despread(block(k + 1)?, tr)?;
        k += 2;
        chip_errors += e1 + e2;
        let psdu_len = usize::from((len_hi << 4) | len_lo) & 0x7F;
        let mut symbols = Vec::with_capacity(psdu_len * 2);
        for j in 0..psdu_len * 2 {
            let (sym, errs) = self.despread(block(k + j)?, tr)?;
            symbols.push(sym);
            chip_errors += errs;
        }
        Ok(ReceivedPpdu {
            psdu: wazabee_dot154::dsss::symbols_to_bytes(&symbols),
            chip_errors,
            shr_errors: capture.sync_errors,
        })
    }

    /// Like [`WazaBeeRx::try_receive`] but collapsing all errors to `None`.
    pub fn receive(&self, samples: &[wazabee_dsp::Iq]) -> Option<ReceivedPpdu> {
        self.try_receive(samples).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::{BleModem, BlePhy};
    use wazabee_dot154::fcs::append_fcs;
    use wazabee_dot154::{Dot154Modem, MacFrame, Ppdu};
    use wazabee_dsp::AwgnSource;
    use wazabee_esb::EsbModem;

    fn ble_rx() -> WazaBeeRx<BleModem> {
        WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap()
    }

    fn ppdu(payload: &[u8]) -> Ppdu {
        Ppdu::new(append_fcs(payload)).unwrap()
    }

    #[test]
    fn sync_pattern_is_32_bits() {
        assert_eq!(access_address_pattern().len(), 32);
        // The register value round-trips through the bit pattern.
        let v = access_address_value();
        let bits: Vec<u8> = (0..32).map(|k| ((v >> k) & 1) as u8).collect();
        assert_eq!(bits, access_address_pattern());
    }

    #[test]
    fn receives_genuine_oqpsk_transmission() {
        let frame = MacFrame::data(0x1234, 0x0063, 0x0042, 9, vec![0x2A]);
        let p = Ppdu::new(frame.to_psdu()).unwrap();
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = ble_rx().receive(&air).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
        assert_eq!(MacFrame::from_psdu(&rx.psdu), Some(frame));
    }

    #[test]
    fn receives_under_noise() {
        let p = ppdu(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut air = Dot154Modem::new(8).transmit(&p);
        AwgnSource::from_snr_db(11, 12.0, 1.0).add_to(&mut air);
        let rx = ble_rx().receive(&air).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
    }

    #[test]
    fn esb_radio_receives_too() {
        let p = ppdu(&[0x10, 0x20, 0x30]);
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = WazaBeeRx::new(EsbModem::new(8))
            .unwrap()
            .receive(&air)
            .unwrap();
        assert_eq!(rx.psdu, p.psdu());
    }

    #[test]
    fn waveform_table_also_decodes() {
        let p = ppdu(&[6, 6, 6]);
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = ble_rx()
            .with_table(DespreadTable::Waveform)
            .receive(&air)
            .unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert_eq!(rx.chip_errors, 0, "waveform table should be exact here");
    }

    #[test]
    fn loopback_with_wazabee_tx() {
        // BLE chip → BLE chip, both diverted: full cross-technology channel.
        let tx = crate::WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let p = ppdu(&[0xAA, 0xBB, 0xCC, 0xDD]);
        let rx = ble_rx().receive(&tx.transmit(&p)).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
    }

    #[test]
    fn no_sync_in_noise() {
        let mut noise = vec![wazabee_dsp::Iq::ZERO; 40_000];
        AwgnSource::new(13, 0.7).add_to(&mut noise);
        assert_eq!(ble_rx().try_receive(&noise), Err(WazaBeeError::NoSync));
    }

    #[test]
    fn overlong_preamble_rejected() {
        // Regression: the preamble budget used to be 8, but the sync pattern
        // consumes at least one of the eight `0000` symbols, so a stream
        // with 8 whole symbols *after* sync can only come from a non-standard
        // (attacker-lengthened) preamble and must be rejected.
        use wazabee_dot154::msk::frame_chips_to_msk;
        let p = ppdu(&[3, 2, 1]);
        let mut chips: Vec<u8> = pn_sequence(0).to_vec();
        chips.extend(p.to_chips());
        let mut bits: Vec<u8> = (0..crate::tx::TX_WARMUP_BITS)
            .map(|k| (k % 2) as u8)
            .collect();
        bits.extend(frame_chips_to_msk(&chips, 0));
        let air = BleModem::new(BlePhy::Le2M, 8).transmit_raw(&bits);
        assert_eq!(ble_rx().try_receive(&air), Err(WazaBeeError::Truncated));
    }

    #[test]
    fn truncated_capture_reported() {
        let p = ppdu(&[7; 60]);
        let air = Dot154Modem::new(8).transmit(&p);
        let cut = air.len() / 2;
        assert_eq!(
            ble_rx().try_receive(&air[..cut]),
            Err(WazaBeeError::Truncated)
        );
    }

    #[test]
    fn le1m_radio_rejected() {
        let err = WazaBeeRx::new(BleModem::new(BlePhy::Le1M, 8)).unwrap_err();
        assert!(matches!(err, WazaBeeError::UnsupportedDataRate { .. }));
    }

    #[test]
    fn corrupted_fcs_still_delivered() {
        // The attack disables CRC/FCS filtering: corrupt frames reach the
        // attacker, flagged by fcs_ok().
        let mut psdu = append_fcs(&[1, 1, 1]);
        let n = psdu.len();
        psdu[n - 1] ^= 0x55;
        let p = Ppdu::new(psdu.clone()).unwrap();
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = ble_rx().receive(&air).unwrap();
        assert_eq!(rx.psdu, psdu);
        assert!(!rx.fcs_ok());
    }
}
