//! The WazaBee reception primitive (paper §IV-D).
//!
//! The diverted chip's access-address correlator is programmed with the MSK
//! image of the 802.15.4 `0000` symbol, CRC checking is disabled, and the
//! capture length is maxed out. Each captured 32-bit block is then matched
//! against the sixteen MSK images by Hamming distance to recover symbols —
//! tolerating both the GMSK≈MSK approximation error and channel bitflips.

use wazabee_dot154::modem::ReceivedPpdu;
use wazabee_dot154::msk::{boundary_msk_bit, closest_symbol_msk_packed, pn_msk_image};
use wazabee_dot154::pn::pn_sequence;
use wazabee_dsp::PackedBits;
use wazabee_flightrec::RxFailure;

use crate::error::WazaBeeError;
use crate::msk::despread_msk_block_packed;
use crate::radio::RawFskRadio;

/// Maps a reception error to its flight-recorder failure classification.
pub(crate) fn rx_failure(e: &WazaBeeError) -> RxFailure {
    match e {
        WazaBeeError::NoSync => RxFailure::NoSync,
        WazaBeeError::SyncFalsePositive => RxFailure::SyncFalsePositive,
        WazaBeeError::DespreadDistanceExceeded { .. } => RxFailure::DespreadDistanceExceeded,
        WazaBeeError::PreambleOverrun => RxFailure::PreambleOverrun,
        WazaBeeError::PhrReserved { .. } => RxFailure::PhrReserved,
        // No other variant escapes the receive engine; Truncated covers the rest.
        _ => RxFailure::TruncatedFrame,
    }
}

/// Which correspondence table despreading uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DespreadTable {
    /// The paper's Algorithm-1 table (§IV-C) — faithful to the original
    /// implementation, at most one bit of distance from the waveform truth.
    #[default]
    Algorithm1,
    /// The waveform-exact MSK images — the ablation alternative.
    Waveform,
}

/// The 32-bit sync pattern for the diverted access-address correlator: the
/// boundary transition between two consecutive `0000` symbols followed by
/// the 31-bit MSK image of the `0000` PN sequence.
///
/// Because the 802.15.4 preamble is eight `0000` symbols, this pattern
/// repeats throughout the preamble and guarantees symbol-aligned sync.
pub fn access_address_pattern() -> Vec<u8> {
    let pn0 = pn_sequence(0);
    let mut bits = vec![boundary_msk_bit(pn0[31], pn0[0], false)];
    bits.extend(pn_msk_image(0));
    bits
}

/// The same pattern packed as the 32-bit value a real chip's access-address
/// register would hold (first-transmitted bit in the least significant
/// position, as BLE serialises access addresses).
pub fn access_address_value() -> u32 {
    access_address_pattern()
        .iter()
        .enumerate()
        .fold(0u32, |acc, (k, &b)| acc | (u32::from(b) << k))
}

/// Estimates the carrier-frequency offset, in Hz: the mean discriminator
/// output over (up to) the first 8192 samples of `samples`. MSK's symmetric
/// ±deviation averages out over the alternating preamble, leaving the
/// residual carrier offset — a coarse but useful forensic figure.
///
/// Callers hand over a window starting *at the sync sample offset*: a long
/// pre-frame lead-in is mostly silence, whose zero-frequency samples would
/// dilute the mean toward zero and under-report the offset.
///
/// Only computed when a flight-recorder trace is active; returns `None` for
/// windows too short to difference.
pub(crate) fn estimate_cfo_hz(samples: &[wazabee_dsp::Iq], sample_rate: f64) -> Option<f64> {
    const CFO_WINDOW: usize = 8192;
    let window = &samples[..samples.len().min(CFO_WINDOW)];
    let mean = wazabee_dsp::discriminator::mean_frequency(window)?;
    Some(mean * sample_rate / std::f64::consts::TAU)
}

/// Data-aided CFO estimate over a *synced* window: the mean discriminator
/// output minus the phase contribution of the demodulated bit decisions
/// (±π/(2·sps) rad/sample for a 1/0 at modulation index 0.5), leaving the
/// residual carrier offset.
///
/// The raw mean of [`estimate_cfo_hz`] is only unbiased when the window's
/// bits are balanced; a frame body with a 1/0 imbalance of fraction `b`
/// drags the raw estimate by `b · symbol_rate/4` — tens of kHz for ordinary
/// payloads. Subtracting the decision-weighted deviation removes that bias.
///
/// `samples` starts at the sync hit's own sample; `bits` is the lane's bit
/// stream with `from_bit` the lane-local index of the bit at `samples[0]`.
pub(crate) fn estimate_cfo_hz_synced(
    samples: &[wazabee_dsp::Iq],
    bits: &PackedBits,
    from_bit: usize,
    sps: usize,
    sample_rate: f64,
) -> Option<f64> {
    const CFO_WINDOW_BITS: usize = 1024;
    let nbits = CFO_WINDOW_BITS
        .min(bits.len().saturating_sub(from_bit))
        .min(samples.len().saturating_sub(1) / sps);
    if nbits == 0 {
        return None;
    }
    // Exactly the samples whose first differences the `nbits` decisions
    // integrated over, so measurement and compensation stay aligned.
    let mean = wazabee_dsp::discriminator::mean_frequency(&samples[..nbits * sps + 1])?;
    let ones: usize = (from_bit..from_bit + nbits)
        .map(|k| usize::from(bits.bit(k)))
        .sum();
    let balance = (2.0 * ones as f64 - nbits as f64) / nbits as f64;
    let data_step = balance * std::f64::consts::PI / (2.0 * sps as f64);
    Some((mean - data_step) * sample_rate / std::f64::consts::TAU)
}

/// The WazaBee reception primitive bound to a diverted radio.
///
/// # Examples
///
/// ```
/// use wazabee::{WazaBeeRx, WazaBeeTx};
/// use wazabee_ble::{BleModem, BlePhy};
/// use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
///
/// // A genuine 802.15.4 transmitter, received by a diverted BLE chip.
/// let ppdu = Ppdu::new(append_fcs(&[1, 2, 3])).unwrap();
/// let air = Dot154Modem::new(8).transmit(&ppdu);
/// let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
/// let frame = rx.receive(&air).unwrap();
/// assert_eq!(frame.psdu, ppdu.psdu());
/// assert!(frame.fcs_ok());
/// ```
#[derive(Debug, Clone)]
pub struct WazaBeeRx<R> {
    radio: R,
    table: DespreadTable,
    max_sync_errors: usize,
    max_despread_distance: Option<usize>,
    /// The diverted access-address sync pattern, computed once at
    /// construction — real hardware programs its correlator register once,
    /// and the software model should not rebuild the pattern per receive.
    sync_bits: Vec<u8>,
}

/// Upper bound on captured bits: enough for the remaining preamble, SFD,
/// PHR and a maximum-length PSDU.
const MAX_CAPTURE_BITS: usize = (8 + 2 + 2 + 2 * 127) * 32 + 64;

/// How many leading `0000` symbols may follow the sync match before the SFD
/// must appear. The preamble is 8 symbols and the sync pattern consumes at
/// least one of them, so at most 7 whole `0000` symbols can remain.
const MAX_PREAMBLE_SYMBOLS: usize = 7;

impl<R: RawFskRadio> WazaBeeRx<R> {
    /// Binds the primitive to a radio, verifying the 2 Mbit/s requirement.
    ///
    /// # Errors
    ///
    /// Returns [`WazaBeeError::UnsupportedDataRate`] when the radio does not
    /// run at 2 Msym/s.
    pub fn new(radio: R) -> Result<Self, WazaBeeError> {
        let rate = radio.symbol_rate();
        if (rate - 2.0e6).abs() > 1.0 {
            return Err(WazaBeeError::UnsupportedDataRate { actual: rate });
        }
        Ok(WazaBeeRx {
            radio,
            table: DespreadTable::Algorithm1,
            max_sync_errors: 3,
            max_despread_distance: None,
            sync_bits: access_address_pattern(),
        })
    }

    /// Selects the despreading table (ablation knob).
    pub fn with_table(mut self, table: DespreadTable) -> Self {
        self.table = table;
        self
    }

    /// Adjusts the access-address correlator tolerance (bits out of 32).
    pub fn with_max_sync_errors(mut self, max: usize) -> Self {
        self.max_sync_errors = max;
        self
    }

    /// Sets a Hamming-distance budget for despread symbol decisions: any
    /// decision farther than `max` chips from its nearest MSK image aborts
    /// the frame with [`WazaBeeError::DespreadDistanceExceeded`].
    ///
    /// The paper's receiver accepts the nearest image unconditionally
    /// (the default, `None`); the budget turns silent symbol guesses under
    /// heavy noise into a typed, observable failure.
    pub fn with_max_despread_distance(mut self, max: usize) -> Self {
        self.max_despread_distance = Some(max);
        self
    }

    /// The underlying radio.
    pub fn radio(&self) -> &R {
        &self.radio
    }

    /// The diverted access-address sync pattern programmed at construction.
    pub(crate) fn sync_bits(&self) -> &[u8] {
        &self.sync_bits
    }

    /// The configured correlator tolerance (bits out of 32).
    pub(crate) fn max_sync_errors(&self) -> usize {
        self.max_sync_errors
    }

    /// One despread decision with no side effects. The streaming engine
    /// re-runs held attempts as chunks arrive, so telemetry and tracing are
    /// deferred to commit time; this must stay pure.
    pub(crate) fn despread_raw(&self, block: u32) -> (u8, usize) {
        match self.table {
            DespreadTable::Algorithm1 => despread_msk_block_packed(block),
            DespreadTable::Waveform => closest_symbol_msk_packed(block),
        }
    }

    /// Decodes one attempt out of a demodulated bit stream whose bit `start`
    /// is the first bit *after* the matched sync pattern. `finished` tells
    /// the decoder whether the stream can still grow: running out of bits is
    /// [`DecodeOutcome::NeedBits`] while more chunks may arrive, and
    /// `Truncated` once the stream is flushed (or the capture bound is hit).
    ///
    /// Pure with respect to telemetry and the flight recorder — held
    /// attempts are re-run on every chunk, and double-counting a replay
    /// would corrupt the counters. The engine emits the accumulated
    /// `distances` once, when it commits the outcome.
    pub(crate) fn decode_after_sync(
        &self,
        bits: &PackedBits,
        start: usize,
        finished: bool,
    ) -> DecodeOutcome {
        enum BlockEnd {
            NeedMore,
            Truncated,
        }
        // The stream after sync is a sequence of 32-bit blocks:
        // [boundary bit, 31-bit MSK image].
        let block = |k: usize| -> Result<u32, BlockEnd> {
            if (k + 1) * 32 > MAX_CAPTURE_BITS {
                return Err(BlockEnd::Truncated);
            }
            let s = start + k * 32 + 1;
            if s + 31 > bits.len() {
                return Err(if finished {
                    BlockEnd::Truncated
                } else {
                    BlockEnd::NeedMore
                });
            }
            Ok(bits.extract_u32(s, 31))
        };
        let mut distances: Vec<usize> = Vec::new();
        macro_rules! despread_block {
            ($k:expr) => {{
                let b = match block($k) {
                    Ok(b) => b,
                    Err(BlockEnd::NeedMore) => return DecodeOutcome::NeedBits,
                    Err(BlockEnd::Truncated) => {
                        return DecodeOutcome::Fail {
                            err: WazaBeeError::Truncated,
                            distances,
                        }
                    }
                };
                let (sym, errs) = self.despread_raw(b);
                distances.push(errs);
                if let Some(max) = self.max_despread_distance {
                    if errs > max {
                        return DecodeOutcome::Fail {
                            err: WazaBeeError::DespreadDistanceExceeded {
                                distance: errs,
                                max,
                            },
                            distances,
                        };
                    }
                }
                (sym, errs)
            }};
        }
        // Skip remaining preamble symbols, then expect the SFD pair (7, A).
        let mut k = 0usize;
        let mut chip_errors = 0usize;
        loop {
            let (sym, errs) = despread_block!(k);
            k += 1;
            if sym == 0 {
                if k > MAX_PREAMBLE_SYMBOLS {
                    return DecodeOutcome::Fail {
                        err: WazaBeeError::PreambleOverrun,
                        distances,
                    };
                }
                chip_errors += errs;
                continue;
            }
            if sym != 0x7 {
                return DecodeOutcome::Fail {
                    err: WazaBeeError::SyncFalsePositive,
                    distances,
                };
            }
            chip_errors += errs;
            break;
        }
        let (sfd_hi, errs) = despread_block!(k);
        k += 1;
        if sfd_hi != 0xA {
            return DecodeOutcome::Fail {
                err: WazaBeeError::SyncFalsePositive,
                distances,
            };
        }
        chip_errors += errs;
        // PHR: frame length. Lengths ≥ 128 are reserved — masking them to a
        // short frame would silently misparse the PSDU, so reject instead.
        let (len_lo, e1) = despread_block!(k);
        let (len_hi, e2) = despread_block!(k + 1);
        k += 2;
        chip_errors += e1 + e2;
        let raw_len = usize::from((len_hi << 4) | len_lo);
        if raw_len > 0x7F {
            return DecodeOutcome::Fail {
                err: WazaBeeError::PhrReserved {
                    value: raw_len as u8,
                },
                distances,
            };
        }
        let psdu_len = raw_len;
        let mut symbols = Vec::with_capacity(psdu_len * 2);
        for j in 0..psdu_len * 2 {
            let (sym, errs) = despread_block!(k + j);
            symbols.push(sym);
            chip_errors += errs;
        }
        DecodeOutcome::Frame {
            psdu: wazabee_dot154::dsss::symbols_to_bytes(&symbols),
            chip_errors,
            used_bits: (k + psdu_len * 2) * 32,
            distances,
        }
    }

    /// Attempts to receive one 802.15.4 frame from a capture buffer.
    ///
    /// A one-shot wrapper over [`crate::stream::StreamingRx`]: the whole
    /// buffer is pushed as a single chunk and flushed, and the wrapper
    /// returns the first delivered frame — so a false-positive sync hit or a
    /// corrupted preamble early in the window no longer swallows a genuine
    /// frame later in the same capture. With no frame recovered, the first
    /// typed failure is returned; with no correlator hit at all, `NoSync`.
    ///
    /// Every attempt is recorded by the flight recorder (when one is
    /// installed — see `wazabee-flightrec`) with its attempt index, sync
    /// quality, CFO estimate, per-symbol despread distances, and the typed
    /// failure reason or the delivered frame.
    ///
    /// # Errors
    ///
    /// [`WazaBeeError::NoSync`] when the preamble pattern is absent,
    /// [`WazaBeeError::SyncFalsePositive`] when a correlator match is not
    /// followed by an SFD, [`WazaBeeError::PreambleOverrun`] when too many
    /// zero-symbols follow the sync, [`WazaBeeError::PhrReserved`] when the
    /// PHR announces a reserved length, [`WazaBeeError::DespreadDistanceExceeded`]
    /// when a configured despreading budget is blown, and
    /// [`WazaBeeError::Truncated`] when the capture ends mid-frame.
    pub fn try_receive(&self, samples: &[wazabee_dsp::Iq]) -> Result<ReceivedPpdu, WazaBeeError> {
        let _t = wazabee_telemetry::timed_scope!("wazabee.rx.receive_ns");
        let mut stream = self.stream();
        let mut results = stream.push(samples);
        results.extend(stream.finish());
        let mut first_err: Option<WazaBeeError> = None;
        for r in results {
            match r {
                Ok(frame) => return Ok(frame),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                // Not one correlator hit in the whole window.
                wazabee_telemetry::counter!("wazabee.rx.sync.miss").inc();
                wazabee_telemetry::counter!("wazabee.rx.fail.no_sync").inc();
                let mut tr = wazabee_flightrec::begin("wazabee.rx");
                if tr.active() {
                    tr.tap_iq(samples, self.radio.sample_rate(), None);
                    if let Some(cfo) = estimate_cfo_hz(samples, self.radio.sample_rate()) {
                        tr.cfo_hz(cfo);
                    }
                }
                tr.fail(RxFailure::NoSync);
                Err(WazaBeeError::NoSync)
            }
        }
    }

    /// Like [`WazaBeeRx::try_receive`] but collapsing all errors to `None`.
    pub fn receive(&self, samples: &[wazabee_dsp::Iq]) -> Option<ReceivedPpdu> {
        self.try_receive(samples).ok()
    }
}

/// How one decode attempt (a sync match plus the bits that followed) ended —
/// the pure-decode result the streaming engine commits or holds.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DecodeOutcome {
    /// The attempt parsed a complete frame, consuming `used_bits` stream
    /// bits after the sync pattern.
    Frame {
        /// The recovered PSDU.
        psdu: Vec<u8>,
        /// Chip-domain errors accumulated across all despread decisions.
        chip_errors: usize,
        /// Bits consumed after the sync pattern (a whole number of blocks).
        used_bits: usize,
        /// Per-symbol despread Hamming distances, in decode order.
        distances: Vec<usize>,
    },
    /// A pipeline stage killed the attempt.
    Fail {
        /// The typed failure.
        err: WazaBeeError,
        /// Distances of the decisions made before the attempt died.
        distances: Vec<usize>,
    },
    /// The stream ended mid-attempt and more chunks may still arrive.
    NeedBits,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::{BleModem, BlePhy};
    use wazabee_dot154::fcs::append_fcs;
    use wazabee_dot154::{Dot154Modem, MacFrame, Ppdu};
    use wazabee_dsp::AwgnSource;
    use wazabee_esb::EsbModem;

    fn ble_rx() -> WazaBeeRx<BleModem> {
        WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap()
    }

    fn ppdu(payload: &[u8]) -> Ppdu {
        Ppdu::new(append_fcs(payload)).unwrap()
    }

    #[test]
    fn sync_pattern_is_32_bits() {
        assert_eq!(access_address_pattern().len(), 32);
        // The register value round-trips through the bit pattern.
        let v = access_address_value();
        let bits: Vec<u8> = (0..32).map(|k| ((v >> k) & 1) as u8).collect();
        assert_eq!(bits, access_address_pattern());
    }

    #[test]
    fn receives_genuine_oqpsk_transmission() {
        let frame = MacFrame::data(0x1234, 0x0063, 0x0042, 9, vec![0x2A]);
        let p = Ppdu::new(frame.to_psdu()).unwrap();
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = ble_rx().receive(&air).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
        assert_eq!(MacFrame::from_psdu(&rx.psdu), Some(frame));
    }

    #[test]
    fn receives_under_noise() {
        let p = ppdu(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut air = Dot154Modem::new(8).transmit(&p);
        AwgnSource::from_snr_db(11, 12.0, 1.0).add_to(&mut air);
        let rx = ble_rx().receive(&air).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
    }

    #[test]
    fn esb_radio_receives_too() {
        let p = ppdu(&[0x10, 0x20, 0x30]);
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = WazaBeeRx::new(EsbModem::new(8))
            .unwrap()
            .receive(&air)
            .unwrap();
        assert_eq!(rx.psdu, p.psdu());
    }

    #[test]
    fn waveform_table_also_decodes() {
        let p = ppdu(&[6, 6, 6]);
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = ble_rx()
            .with_table(DespreadTable::Waveform)
            .receive(&air)
            .unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert_eq!(rx.chip_errors, 0, "waveform table should be exact here");
    }

    #[test]
    fn loopback_with_wazabee_tx() {
        // BLE chip → BLE chip, both diverted: full cross-technology channel.
        let tx = crate::WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let p = ppdu(&[0xAA, 0xBB, 0xCC, 0xDD]);
        let rx = ble_rx().receive(&tx.transmit(&p)).unwrap();
        assert_eq!(rx.psdu, p.psdu());
        assert!(rx.fcs_ok());
    }

    #[test]
    fn no_sync_in_noise() {
        let mut noise = vec![wazabee_dsp::Iq::ZERO; 40_000];
        AwgnSource::new(13, 0.7).add_to(&mut noise);
        assert_eq!(ble_rx().try_receive(&noise), Err(WazaBeeError::NoSync));
    }

    #[test]
    fn overlong_preamble_flagged_then_recovered() {
        // An attacker-lengthened preamble (one extra `0000` symbol, so 8
        // whole symbols can follow the earliest sync match) blows the
        // preamble budget on the first attempt — but the sync pattern
        // repeats through the preamble, and re-arming one bit past the
        // failed match walks forward until few enough symbols remain.
        use wazabee_dot154::msk::frame_chips_to_msk;
        let p = ppdu(&[3, 2, 1]);
        let mut chips: Vec<u8> = pn_sequence(0).to_vec();
        chips.extend(p.to_chips());
        let mut bits: Vec<u8> = (0..crate::tx::TX_WARMUP_BITS)
            .map(|k| (k % 2) as u8)
            .collect();
        bits.extend(frame_chips_to_msk(&chips, 0));
        let air = BleModem::new(BlePhy::Le2M, 8).transmit_raw(&bits);

        let rx = ble_rx();
        let mut stream = rx.stream();
        let mut results = stream.push(&air);
        results.extend(stream.finish());
        assert_eq!(
            results.first(),
            Some(&Err(WazaBeeError::PreambleOverrun)),
            "first attempt must report the non-standard preamble"
        );
        let frame = results
            .iter()
            .find_map(|r| r.as_ref().ok())
            .expect("resync must eventually recover the frame");
        assert_eq!(frame.psdu, p.psdu());

        // The one-shot wrapper surfaces the recovered frame directly.
        assert_eq!(rx.try_receive(&air).unwrap().psdu, p.psdu());
    }

    #[test]
    fn reserved_phr_rejected_not_misparsed() {
        // A PHR announcing a reserved length (here 0x83 = 131 > 127) used to
        // be masked with 0x7F and decoded as a 3-byte frame — silently
        // misparsing the PSDU. It must surface as a typed failure instead.
        use wazabee_dot154::msk::frame_chips_to_msk;
        let mut chips: Vec<u8> = Vec::new();
        for _ in 0..8 {
            chips.extend(pn_sequence(0)); // preamble
        }
        chips.extend(pn_sequence(0x7)); // SFD low nibble
        chips.extend(pn_sequence(0xA)); // SFD high nibble
        chips.extend(pn_sequence(0x3)); // PHR low nibble
        chips.extend(pn_sequence(0x8)); // PHR high nibble -> 0x83 = 131
        for sym in [0x1, 0x4, 0x1, 0x5] {
            chips.extend(pn_sequence(sym)); // garbage "payload"
        }
        let mut bits: Vec<u8> = (0..crate::tx::TX_WARMUP_BITS)
            .map(|k| (k % 2) as u8)
            .collect();
        bits.extend(frame_chips_to_msk(&chips, 0));
        let air = BleModem::new(BlePhy::Le2M, 8).transmit_raw(&bits);
        assert_eq!(
            ble_rx().try_receive(&air),
            Err(WazaBeeError::PhrReserved { value: 131 })
        );
    }

    #[test]
    fn truncated_capture_reported() {
        let p = ppdu(&[7; 60]);
        let air = Dot154Modem::new(8).transmit(&p);
        let cut = air.len() / 2;
        assert_eq!(
            ble_rx().try_receive(&air[..cut]),
            Err(WazaBeeError::Truncated)
        );
    }

    #[test]
    fn le1m_radio_rejected() {
        let err = WazaBeeRx::new(BleModem::new(BlePhy::Le1M, 8)).unwrap_err();
        assert!(matches!(err, WazaBeeError::UnsupportedDataRate { .. }));
    }

    #[test]
    fn corrupted_fcs_still_delivered() {
        // The attack disables CRC/FCS filtering: corrupt frames reach the
        // attacker, flagged by fcs_ok().
        let mut psdu = append_fcs(&[1, 1, 1]);
        let n = psdu.len();
        psdu[n - 1] ^= 0x55;
        let p = Ppdu::new(psdu.clone()).unwrap();
        let air = Dot154Modem::new(8).transmit(&p);
        let rx = ble_rx().receive(&air).unwrap();
        assert_eq!(rx.psdu, psdu);
        assert!(!rx.fcs_ok());
    }
}
