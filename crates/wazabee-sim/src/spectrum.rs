//! The shared medium: per-channel busy periods ("clusters") of overlapping
//! transmissions on a global sample timeline, and the superposition / CCA
//! arithmetic over them.
//!
//! A cluster opens when a transmission starts on an idle channel and closes
//! when the last overlapping transmission ends. Only then is the waveform
//! each receiver heard materialised: every member transmission is summed in
//! at its sample offset via [`combine_at`], scaled by its source's path
//! gain — so a collision is two frames *actually adding* in the complex
//! plane, and whether either survives is decided by the demodulator, not by
//! a packet-level coin flip.
//!
//! CCA runs over the same planar `f32` superposition the demodulators decode
//! ([`cca_power_planar`]): what carrier sense measures is exactly the energy
//! receivers hear, down to the `f32` narrowing.

use wazabee_dsp::IqBuf;
use wazabee_radio::{combine_at_planar, Instant};

#[cfg(test)]
use wazabee_dsp::iq::Iq;

/// What kind of energy a transmission is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxKind {
    /// A modulated 802.15.4 frame (from a real or diverted radio).
    Frame,
    /// A shaped-noise jamming burst.
    Jam,
}

/// Which queue a frame transmission came from, deciding the sender-side
/// bookkeeping when it ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxOrigin {
    /// Head of a Zigbee node's CSMA queue (may await an ACK).
    Head,
    /// An immediate frame: ACK after turnaround, bypassing CSMA.
    Immediate,
    /// Attacker-originated; no MAC bookkeeping.
    Attacker,
}

/// One transmission on the air.
#[derive(Debug)]
pub(crate) struct Transmission {
    /// Shard-local index of the transmitting node.
    pub source: usize,
    /// Keyup instant.
    pub start: Instant,
    /// Instant the carrier drops.
    pub end: Instant,
    /// The baseband waveform, at unit gain.
    pub samples: Vec<wazabee_dsp::Iq>,
    pub kind: TxKind,
    pub origin: TxOrigin,
    /// MAC sequence number, for frame transmissions with sender bookkeeping.
    pub seq: Option<u8>,
    /// Whether the frame solicits an acknowledgement.
    pub ack_request: bool,
    /// Whether sender-side end-of-transmission bookkeeping has run.
    pub finalized: bool,
}

/// Per-channel busy-period state.
#[derive(Debug, Default)]
pub(crate) struct ChannelAir {
    /// Transmissions of the current cluster (empty when the channel has been
    /// idle since the last close).
    pub cluster: Vec<Transmission>,
    /// How many cluster members are still on the air.
    pub active: usize,
    /// Keyup instant of the cluster's first transmission.
    pub cluster_start: Instant,
}

/// Zero samples prepended to every receiver window so the discriminator
/// settles before the first transmission's preamble.
pub(crate) const LEAD_PAD: usize = 64;

/// Zero samples appended after the cluster's last sample.
pub(crate) const TAIL_PAD: usize = 32;

/// Superposes a closed cluster into the planar waveform one receiver hears:
/// every transmission summed at its sample offset, scaled by `gains[k]`
/// (one entry per cluster member, in order).
///
/// Each member is placed with one fused scale-and-add kernel pass — no
/// per-member scaled temporary — and the result stays planar all the way
/// into the streaming demodulator.
pub(crate) fn superpose_planar(
    cluster: &[Transmission],
    gains: &[f64],
    cluster_start: Instant,
    cluster_end: Instant,
    samples_per_us: u64,
) -> IqBuf {
    let span = (cluster_end.0 - cluster_start.0) * samples_per_us;
    let mut buf = IqBuf::new();
    buf.resize(span as usize + LEAD_PAD + TAIL_PAD);
    for (tx, &g) in cluster.iter().zip(gains) {
        let offset = ((tx.start.0 - cluster_start.0) * samples_per_us) as usize + LEAD_PAD;
        combine_at_planar(&mut buf, &tx.samples, offset, g);
    }
    buf
}

/// Interleaved shim over [`superpose_planar`], for callers that still want a
/// `Vec<Iq>` window (the waveform is the planar `f32` superposition widened
/// back to `f64`).
#[allow(dead_code)]
pub(crate) fn superpose(
    cluster: &[Transmission],
    gains: &[f64],
    cluster_start: Instant,
    cluster_end: Instant,
    samples_per_us: u64,
) -> Vec<wazabee_dsp::Iq> {
    superpose_planar(cluster, gains, cluster_start, cluster_end, samples_per_us).to_interleaved()
}

/// Mean power over the trailing CCA window `[now - window_us, now]` of the
/// superposed live spectrum: the energy a CCA measurement integrates.
/// `gains[k]` scales cluster member `k`, as in [`superpose_planar`].
///
/// The window is accumulated into `scratch` (cleared and reused across
/// measurements — no per-call allocation on the CCA hot path) through the
/// same planar `f32` scale-and-add kernel the receive superposition uses, so
/// carrier sense and demodulation integrate *identical* energy. The old
/// interleaved `f64` path could disagree with what receivers actually heard
/// right at the threshold; the busy/idle parity test below pins the planar
/// agreement.
pub(crate) fn cca_power_planar(
    cluster: &[Transmission],
    gains: &[f64],
    now: Instant,
    window_us: u64,
    samples_per_us: u64,
    scratch: &mut IqBuf,
) -> f64 {
    let win_start = now.0.saturating_sub(window_us);
    let win_len = ((now.0 - win_start) * samples_per_us) as usize;
    if win_len == 0 {
        return 0.0;
    }
    let g0 = win_start * samples_per_us;
    scratch.clear();
    scratch.resize(win_len);
    for (tx, &g) in cluster.iter().zip(gains) {
        let s0 = tx.start.0 * samples_per_us;
        let lo = g0.max(s0);
        let hi = (s0 + tx.samples.len() as u64).min(g0 + win_len as u64);
        if lo >= hi {
            continue;
        }
        combine_at_planar(
            scratch,
            &tx.samples[(lo - s0) as usize..(hi - s0) as usize],
            (lo - g0) as usize,
            g,
        );
    }
    scratch.mean_power()
}

/// The retired interleaved `f64` CCA integration, kept as the reference the
/// planar path is parity-tested against.
#[cfg(test)]
fn cca_power_interleaved(
    cluster: &[Transmission],
    gains: &[f64],
    now: Instant,
    window_us: u64,
    samples_per_us: u64,
) -> f64 {
    let win_start = now.0.saturating_sub(window_us);
    let win_len = ((now.0 - win_start) * samples_per_us) as usize;
    if win_len == 0 {
        return 0.0;
    }
    let g0 = win_start * samples_per_us;
    let mut buf = vec![Iq::ZERO; win_len];
    for (tx, &g) in cluster.iter().zip(gains) {
        let s0 = tx.start.0 * samples_per_us;
        let lo = g0.max(s0);
        let hi = (s0 + tx.samples.len() as u64).min(g0 + win_len as u64);
        for gidx in lo..hi {
            buf[(gidx - g0) as usize] += tx.samples[(gidx - s0) as usize].scale(g);
        }
    }
    wazabee_dsp::iq::mean_power(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(source: usize, start: u64, n_us: u64, spu: u64, amp: f64) -> Transmission {
        Transmission {
            source,
            start: Instant(start),
            end: Instant(start + n_us),
            samples: vec![Iq::new(amp, 0.0); (n_us * spu) as usize],
            kind: TxKind::Frame,
            origin: TxOrigin::Attacker,
            seq: None,
            ack_request: false,
            finalized: false,
        }
    }

    fn cca(cluster: &[Transmission], gains: &[f64], now: Instant, spu: u64) -> f64 {
        let mut scratch = IqBuf::new();
        cca_power_planar(cluster, gains, now, 128, spu, &mut scratch)
    }

    #[test]
    fn superposition_adds_overlap_only() {
        let spu = 2;
        let a = tx(0, 100, 10, spu, 1.0);
        let b = tx(1, 105, 10, spu, 1.0);
        let buf = superpose(&[a, b], &[1.0, 1.0], Instant(100), Instant(115), spu);
        assert_eq!(buf.len(), 30 + LEAD_PAD + TAIL_PAD);
        // Disjoint head: amplitude 1; overlap: amplitude 2.
        assert!((buf[LEAD_PAD].i - 1.0).abs() < 1e-12);
        assert!((buf[LEAD_PAD + 11].i - 2.0).abs() < 1e-12);
        assert!((buf[LEAD_PAD + 25].i - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gains_scale_each_member() {
        let spu = 2;
        let a = tx(0, 0, 4, spu, 1.0);
        let buf = superpose(&[a], &[0.5], Instant(0), Instant(4), spu);
        assert!((buf[LEAD_PAD].i - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cca_sees_only_energy_inside_the_window() {
        let spu = 2;
        // A transmission that ended at t=50 contributes nothing at t=200.
        let old = tx(0, 40, 10, spu, 1.0);
        assert!(cca(&[old], &[1.0], Instant(200), spu) < 1e-12);
        // A live transmission fully covering the window reads its power.
        let live = tx(0, 0, 400, spu, 1.0);
        let p = cca(&[live], &[1.0], Instant(200), spu);
        assert!((p - 1.0).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn cca_partial_overlap_dilutes_power() {
        let spu = 2;
        // Keyed up 64 µs ago: half the 128 µs window has energy.
        let live = tx(0, 136, 400, spu, 1.0);
        let p = cca(&[live], &[1.0], Instant(200), spu);
        assert!((p - 0.5).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn cca_at_time_zero_is_silent() {
        assert_eq!(cca(&[], &[], Instant(0), 2), 0.0);
    }

    #[test]
    fn cca_scratch_is_reused_without_stale_energy() {
        let spu = 4;
        let mut scratch = IqBuf::new();
        let loud = tx(0, 0, 400, spu, 3.0);
        let p1 = cca_power_planar(&[loud], &[1.0], Instant(200), 128, spu, &mut scratch);
        assert!(p1 > 8.0, "p1 = {p1}");
        // A silent channel measured through the same scratch must read zero
        // even though the buffer previously held the loud window.
        let p2 = cca_power_planar(&[], &[], Instant(200), 128, spu, &mut scratch);
        assert_eq!(p2, 0.0);
        // And a shorter window must not read tail samples of a longer one.
        let quiet = tx(0, 190, 400, spu, 1.0);
        let p3 = cca_power_planar(&[quiet], &[1.0], Instant(200), 128, spu, &mut scratch);
        assert!((p3 - 10.0 / 128.0).abs() < 1e-6, "p3 = {p3}");
    }

    /// Regression (CCA/decode energy disagreement): the CCA measurement must
    /// integrate the *same* waveform the demodulators decode — the planar
    /// `f32` superposition — not a separately-built interleaved `f64` window.
    /// Pins the planar CCA against `superpose_planar` output sample-for-
    /// sample at the `f32` boundary, and the busy/idle verdict against the
    /// retired interleaved reference across gains that straddle a threshold.
    #[test]
    fn cca_matches_the_superposition_receivers_hear() {
        let spu = 8;
        let window_us = 128;
        let threshold = 0.05;
        let mut scratch = IqBuf::new();
        for &(ga, gb) in &[
            (1.0, 1.0),
            (0.223_6, 0.0), // ga² ≈ 0.05: right at the threshold
            (0.223_7, 0.0),
            (0.158, 0.158), // combined power ≈ 0.0499
            (0.5, 0.25),
            (1e-3, 1e-3),
        ] {
            let a = tx(0, 100, 300, spu, ga);
            let b = tx(1, 150, 300, spu, gb);
            let cluster = [a, b];
            let gains = [1.0, 1.0];
            let now = Instant(250);

            // The waveform the receivers will decode when this cluster
            // closes, restricted to the CCA window.
            let full = superpose_planar(&cluster, &gains, Instant(100), Instant(450), spu);
            let w0 = ((now.0 - window_us - 100) * spu) as usize + LEAD_PAD;
            let w1 = ((now.0 - 100) * spu) as usize + LEAD_PAD;
            let mut window = IqBuf::new();
            window.extend_slice(full.slice(w0, w1));
            let heard = window.mean_power();

            let measured = cca_power_planar(&cluster, &gains, now, window_us, spu, &mut scratch);
            assert!(
                (measured - heard).abs() <= 1e-9 * heard.max(1.0),
                "CCA ({measured}) disagrees with decoded superposition ({heard}) \
                 at gains ({ga}, {gb})"
            );

            // Busy/idle verdicts agree with the retired f64 reference: the
            // f32 narrowing moves the measurement by ~1e-7 relative, far
            // inside any sane threshold margin.
            let reference = cca_power_interleaved(&cluster, &gains, now, window_us, spu);
            assert_eq!(
                measured >= threshold,
                reference >= threshold,
                "verdict flipped at gains ({ga}, {gb}): planar {measured} vs f64 {reference}"
            );
            assert!(
                (measured - reference).abs() <= 1e-6 * reference.max(1.0),
                "planar {measured} drifted from f64 reference {reference}"
            );
        }
    }
}
