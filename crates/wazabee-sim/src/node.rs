//! The node bestiary: legitimate Zigbee devices, the four attacker types of
//! the threat model, and the IDS monitor.

use std::collections::VecDeque;

use rand_chacha::ChaCha8Rng;
use wazabee_dot154::csma::CsmaBackoff;
use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::Dot154Channel;
use wazabee_ids::{Alert, ChannelMonitor};
use wazabee_radio::Instant;
use wazabee_zigbee::XbeeNode;

/// Configuration of a reactive jammer: it listens for the start of a frame
/// and keys up a noise burst shortly after, trampling the tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JammerConfig {
    /// Detection-to-keyup latency, in µs.
    pub reaction_us: u64,
    /// Burst duration, in µs.
    pub burst_us: u64,
    /// Burst power (linear; legitimate nodes transmit at 1.0).
    pub power: f64,
    /// Probability the jammer reacts to any given frame start.
    pub trigger_probability: f64,
}

impl Default for JammerConfig {
    fn default() -> Self {
        JammerConfig {
            reaction_us: 64,
            burst_us: 1_200,
            power: 4.0,
            trigger_probability: 1.0,
        }
    }
}

/// Configuration of an energy-depletion flooder: it hammers a victim with
/// acknowledged unicast frames so the victim burns airtime (and battery)
/// transmitting ACKs — the Ghost-in-the-Wireless depletion pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlooderConfig {
    /// PAN the flood frames claim.
    pub pan: u16,
    /// Forged source short address.
    pub src: u16,
    /// Victim short address.
    pub victim: u16,
    /// Inter-frame period, in µs.
    pub interval_us: u64,
}

/// MAC/application state of a legitimate Zigbee node.
#[derive(Debug)]
pub(crate) struct ZigbeeState {
    /// The XBee behaviour model (timers, join state, readings).
    pub app: XbeeNode,
    /// Frames awaiting channel access, head first.
    pub pending: VecDeque<MacFrame>,
    /// Immediate frames (ACKs) that bypass CSMA, sent after turnaround.
    pub immediate: VecDeque<MacFrame>,
    /// The in-flight CSMA attempt for the head of `pending`.
    pub csma: Option<CsmaBackoff>,
    /// Sequence number whose acknowledgement the node is waiting for.
    pub awaiting_ack: Option<u8>,
    /// Retransmissions consumed by the head frame.
    pub retries: u8,
    /// Whether the node's radio is currently keyed up.
    pub transmitting: bool,
}

impl ZigbeeState {
    pub(crate) fn new(app: XbeeNode) -> Self {
        ZigbeeState {
            app,
            pending: VecDeque::new(),
            immediate: VecDeque::new(),
            csma: None,
            awaiting_ack: None,
            retries: 0,
            transmitting: false,
        }
    }
}

/// What a node *is* — the behaviour the event loop drives.
#[derive(Debug)]
pub(crate) enum NodeKind {
    /// A legitimate 802.15.4 device running the XBee stack over CSMA/CA.
    Zigbee(Box<ZigbeeState>),
    /// A WazaBee injector: a diverted BLE chip keying 802.15.4 frames at
    /// scheduled instants, ignoring carrier sense entirely.
    WazaBee,
    /// A reactive jammer.
    Jammer {
        /// Jammer parameters.
        config: JammerConfig,
        /// Whether a burst is pending or on the air (suppresses re-trigger).
        jamming: bool,
    },
    /// An ACK spoofer: decodes acknowledged unicast frames off the air and
    /// forges the ACK before the honest receiver's turnaround elapses.
    Spoofer {
        /// Forged ACKs awaiting their keyup instant.
        immediate: VecDeque<MacFrame>,
    },
    /// An energy-depletion flooder.
    Flooder {
        /// Flood parameters.
        config: FlooderConfig,
        /// Next forged sequence number.
        seq: u8,
    },
    /// A passive IDS monitor wrapping `wazabee-ids`.
    Ids {
        /// The channel monitor observing every cluster.
        monitor: Box<ChannelMonitor>,
        /// Alerts raised so far, stamped with cluster close time.
        alerts: Vec<(Instant, Alert)>,
    },
}

impl NodeKind {
    pub(crate) fn name(&self) -> &'static str {
        match self {
            NodeKind::Zigbee(_) => "zigbee",
            NodeKind::WazaBee => "wazabee",
            NodeKind::Jammer { .. } => "jammer",
            NodeKind::Spoofer { .. } => "spoofer",
            NodeKind::Flooder { .. } => "flooder",
            NodeKind::Ids { .. } => "ids",
        }
    }
}

/// One simulated radio node.
#[derive(Debug)]
pub struct SimNode {
    /// Global handle, as returned by the `add_*` call that created the node.
    /// Nodes live inside their channel's shard under a shard-local index;
    /// every log line, metric label and noise seed uses this global id, so
    /// artifacts are independent of how nodes map onto shards.
    pub(crate) id: usize,
    pub(crate) kind: NodeKind,
    pub(crate) channel: Dot154Channel,
    pub(crate) gain: f64,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) airtime_us: u64,
    pub(crate) tx_count: u64,
}

impl SimNode {
    /// The node's global handle (the index its `add_*` call returned).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's behaviour class: `"zigbee"`, `"wazabee"`, `"jammer"`,
    /// `"spoofer"`, `"flooder"` or `"ids"`.
    pub fn kind_name(&self) -> &'static str {
        self.kind.name()
    }

    /// The channel the node operates on.
    pub fn channel(&self) -> Dot154Channel {
        self.channel
    }

    /// Path gain of this node's transmissions as heard by every receiver.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Total time this node has spent keyed up, in µs — the energy figure
    /// the depletion attack inflates on its victim.
    pub fn airtime_us(&self) -> u64 {
        self.airtime_us
    }

    /// Number of transmissions this node has keyed.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }
}
