//! Simulation configuration: PHY impairments, CSMA/CA policy, and the knobs
//! deciding how faithfully receivers suffer.

use wazabee_dot154::csma::{CsmaConfig, ACK_WAIT_US};

/// Global configuration of a [`crate::SpectrumSim`].
///
/// The impairment fields (`snr_db`, `cfo_hz`, `timing_offset`) model the
/// *receiver side* of every link: the superposed cluster waveform is shifted,
/// delayed and noised once per receiver, with an independent noise draw per
/// (cluster, receiver) pair. Transmitter-side diversity comes from per-node
/// path gains set when the node is added.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Master seed: every node RNG and noise source derives from it.
    pub seed: u64,
    /// O-QPSK oversampling; the sample rate is `2 Mchip/s × samples_per_chip`.
    pub samples_per_chip: usize,
    /// Per-receiver AWGN level; `None` leaves the superposition noiseless.
    pub snr_db: Option<f64>,
    /// Carrier-frequency offset applied to each receiver's window, in Hz.
    pub cfo_hz: f64,
    /// Fractional-sample timing offset applied to each receiver's window.
    pub timing_offset: f64,
    /// CCA energy-detection threshold (linear mean power over the 128 µs
    /// window). Unit-gain MSK has mean power 1.0.
    pub cca_threshold: f64,
    /// Unslotted CSMA/CA parameters and the frame-retry budget.
    pub csma: CsmaConfig,
    /// How long a transmitter waits for an acknowledgement, in µs.
    pub ack_wait_us: u64,
    /// Chunk size (in samples) receivers feed to the streaming decoder —
    /// results are chunk-size-invariant, so this only shapes the call
    /// pattern, never the outcome.
    pub iq_chunk: usize,
    /// How soon after a frame ends the ACK spoofer keys up its forgery —
    /// under `aTurnaroundTime`, so the forgery beats any honest responder.
    pub spoof_delay_us: u64,
    /// Worker threads advancing channel shards in parallel; `None` takes
    /// `WAZABEE_THREADS` / available parallelism
    /// ([`wazabee_dsp::par::default_threads`]). The committed event log,
    /// report and timeline are byte-identical at any value.
    pub threads: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5EED_BEE5,
            samples_per_chip: 8,
            snr_db: Some(25.0),
            cfo_hz: 0.0,
            timing_offset: 0.0,
            cca_threshold: 0.05,
            csma: CsmaConfig::default(),
            ack_wait_us: ACK_WAIT_US,
            iq_chunk: 4096,
            spoof_delay_us: 96,
            threads: None,
        }
    }
}

impl SimConfig {
    /// A noiseless, offset-free channel: losses can only come from genuine
    /// waveform collisions. The CI baseline configuration.
    pub fn ideal() -> Self {
        SimConfig {
            snr_db: None,
            ..SimConfig::default()
        }
    }

    /// An office-grade link: 22 dB SNR, 8 kHz CFO, a quarter-sample timing
    /// offset — the impairment levels of `LinkConfig::office_3m`.
    pub fn office() -> Self {
        SimConfig {
            snr_db: Some(22.0),
            cfo_hz: 8_000.0,
            timing_offset: 0.25,
            ..SimConfig::default()
        }
    }

    /// Samples per microsecond at this oversampling (2 per chip-time).
    pub fn samples_per_us(&self) -> u64 {
        2 * self.samples_per_chip as u64
    }

    /// The complex sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        2.0e6 * self.samples_per_chip as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_arithmetic() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.samples_per_us(), 16);
        assert!((cfg.sample_rate() - 16.0e6).abs() < 1e-9);
    }

    #[test]
    fn ideal_is_noiseless() {
        assert_eq!(SimConfig::ideal().snr_db, None);
        assert!(SimConfig::office().snr_db.is_some());
    }
}
