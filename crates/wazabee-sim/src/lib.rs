#![warn(missing_docs)]

//! # wazabee-sim
//!
//! A deterministic discrete-event **shared-spectrum simulator** for the
//! WazaBee reproduction: the paper's attack scenarios (§VI) play out on a
//! *contended* 2.4 GHz band, and this crate is where that contention is
//! physical rather than assumed.
//!
//! Every transmission — Zigbee O-QPSK from [`wazabee_dot154`], diverted-BLE
//! GFSK from [`wazabee`] — is modulated to IQ and placed on a per-channel
//! sample timeline. Overlapping transmissions are *summed* in the complex
//! plane ([`wazabee_radio::combine_at`]); each receiver then demodulates the
//! superposed waveform with the real streaming receiver
//! ([`wazabee::StreamingRx`]). Whether a collision destroys both frames,
//! one (capture effect), or neither is decided by the demodulator, never by
//! a packet-level coin flip.
//!
//! On top of that medium:
//!
//! * **CSMA/CA** — Zigbee nodes contend with the unslotted algorithm of
//!   802.15.4 §6.2.5 ([`wazabee_dot154::csma`]): BE backoff, a CCA energy
//!   measurement integrated over the live spectrum buffer, ACK wait, and
//!   `macMaxFrameRetries` retransmissions.
//! * **Attackers** — a WazaBee injector (no carrier sense), a reactive
//!   jammer, an ACK spoofer that forges acknowledgements faster than the
//!   honest turnaround, and an energy-depletion flooder.
//! * **IDS** — a passive monitor node wrapping [`wazabee_ids`] observes
//!   every busy period.
//!
//! Runs are deterministic: same seed, same node set, same committed event
//! log — byte-identical across thread counts and IQ chunk sizes.
//!
//! ## Example
//!
//! A WazaBee injection accepted by a victim coordinator through the full
//! IQ path:
//!
//! ```
//! use wazabee_dot154::mac::MacFrame;
//! use wazabee_dot154::Dot154Channel;
//! use wazabee_radio::Instant;
//! use wazabee_sim::{SimConfig, SpectrumSim};
//! use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode, XbeePayload};
//!
//! let ch = Dot154Channel::new(14).unwrap();
//! let mut sim = SpectrumSim::new(SimConfig::ideal());
//! let coord = sim.add_zigbee(XbeeNode::new(
//!     NodeConfig { pan: 0x1234, short_addr: 0x0042, channel: ch },
//!     NodeRole::Coordinator,
//! ));
//! let attacker = sim.add_wazabee_injector(ch, 1.0);
//! let forged = MacFrame::data(
//!     0x1234, 0x0063, 0x0042, 77, XbeePayload::reading(4242).to_bytes(),
//! );
//! sim.inject_at(attacker, Instant(1_000), forged);
//! sim.run_until(Instant(0).plus_ms(10));
//! let victim = sim.zigbee(coord).unwrap();
//! assert_eq!(victim.readings()[0].value, 4242);
//! ```

pub mod config;
pub mod node;
mod shard;
mod sim;
mod spectrum;

pub use config::SimConfig;
pub use node::{FlooderConfig, JammerConfig, SimNode};
pub use sim::{SimReport, SimStats, SpectrumSim};
