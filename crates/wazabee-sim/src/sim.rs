//! The discrete-event spectrum simulator.
//!
//! Every transmission is modulated to IQ by the real modems and placed on a
//! per-channel sample timeline; when a busy period closes, each listening
//! receiver demodulates the *superposed* waveform with the real streaming
//! receiver. Collisions, capture, CFO tolerance and the WazaBee
//! cross-modulation therefore emerge from the PHY arithmetic — the event
//! loop only decides *when* radios key up.
//!
//! Zigbee nodes contend with unslotted CSMA/CA (`wazabee-dot154::csma`):
//! backoff, a CCA energy measurement over the live spectrum buffer, ACK
//! wait, and `macMaxFrameRetries` retransmissions. Attackers ignore carrier
//! sense, exactly as a diverted BLE chip would.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wazabee::{WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::csma::{CsmaBackoff, CsmaStep, CCA_US, TURNAROUND_US};
use wazabee_dot154::mac::{Address, FrameType, MacFrame, BROADCAST_SHORT};
use wazabee_dot154::{Dot154Channel, Dot154Modem, Ppdu};
use wazabee_dsp::iq::Iq;
use wazabee_dsp::resample::fractional_delay_planar_in_place;
use wazabee_dsp::{AwgnSource, IqBuf, Nco};
use wazabee_ids::{Alert, ChannelMonitor, MonitorConfig};
use wazabee_radio::{EventQueue, Instant};
use wazabee_telemetry::SeriesSet;
use wazabee_zigbee::{NodeRole, XbeeNode, XbeePayload};

use crate::config::SimConfig;
use crate::node::{FlooderConfig, JammerConfig, NodeKind, SimNode, ZigbeeState};
use crate::spectrum::{cca_power, superpose_planar, ChannelAir, Transmission, TxKind, TxOrigin};

/// Events the simulator schedules for itself.
#[derive(Debug)]
enum SimEvent {
    /// A node's periodic application timer (sensor reading, flood frame).
    AppTimer { node: usize },
    /// A Zigbee node's backoff expired: perform the CCA now.
    CsmaCca { node: usize },
    /// Key up the head of a node's immediate (CSMA-bypassing) queue.
    SendImmediate { node: usize },
    /// A WazaBee injector's scheduled frame.
    Inject { node: usize, frame: MacFrame },
    /// A reactive jammer's burst keyup.
    JamBurst { node: usize },
    /// A transmission ends on a channel.
    TxEnd { channel: usize },
    /// The ACK wait for `seq` expires.
    AckTimeout { node: usize, seq: u8 },
    /// Sample the enabled timeline (sim-time-driven time series).
    TimelineTick,
}

/// Sim-time-driven time-series recorder (see
/// [`SpectrumSim::enable_timeline`]).
///
/// Owned by the simulation instance — *not* the global telemetry registry —
/// so parallel sweep cells each record their own series and the exported
/// `timeseries.jsonl` stays byte-identical across `WAZABEE_THREADS` and IQ
/// chunk sizes. Timestamps are simulated microseconds; sampling reads only
/// simulation state, never the wall clock.
#[derive(Debug)]
struct Timeline {
    interval_us: u64,
    series: SeriesSet,
    /// Cumulative per-node airtime at the previous tick, for occupancy deltas.
    prev_airtime_us: Vec<u64>,
}

/// Aggregate MAC/PHY counters over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Busy periods in which two or more frame transmissions overlapped.
    pub collisions: u64,
    /// Busy CCA measurements.
    pub cca_busy: u64,
    /// Frame retransmissions (missed ACK or channel-access failure).
    pub retries: u64,
    /// CSMA attempts that died with `CHANNEL_ACCESS_FAILURE`.
    pub csma_failures: u64,
    /// Frames abandoned after exhausting `macMaxFrameRetries`.
    pub frames_abandoned: u64,
    /// Forged acknowledgements keyed by ACK-spoofer nodes.
    pub acks_spoofed: u64,
    /// Jamming bursts keyed by reactive jammers.
    pub jam_bursts: u64,
    /// MAC frames recovered by receivers from superposed spectrum.
    pub frames_decoded: u64,
    /// Committed decode attempts that failed (sync hit but no frame).
    pub decode_failures: u64,
}

/// Summary of a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Sensor readings handed to the MAC for transmission.
    pub readings_sent: u64,
    /// Of those, readings that reached a coordinator's display.
    pub readings_delivered: u64,
    /// `readings_delivered / readings_sent` (1.0 when nothing was sent).
    pub delivery_ratio: f64,
    /// MAC/PHY counters.
    pub stats: SimStats,
    /// Per-node keyed-up time, in µs (index-aligned with node handles).
    pub node_airtime_us: Vec<u64>,
    /// Simulated time elapsed, in µs.
    pub sim_time_us: u64,
}

/// The PHY-in-the-loop shared-spectrum simulator.
///
/// # Examples
///
/// ```
/// use wazabee_dot154::Dot154Channel;
/// use wazabee_radio::Instant;
/// use wazabee_sim::{SimConfig, SpectrumSim};
/// use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode};
///
/// let ch = Dot154Channel::new(14).unwrap();
/// let mut sim = SpectrumSim::new(SimConfig::ideal());
/// sim.add_zigbee(XbeeNode::new(
///     NodeConfig { pan: 0x1234, short_addr: 0x0042, channel: ch },
///     NodeRole::Coordinator,
/// ));
/// sim.add_zigbee(XbeeNode::new(
///     NodeConfig { pan: 0x1234, short_addr: 0x0063, channel: ch },
///     NodeRole::Sensor { interval_ms: 50 },
/// ));
/// sim.run_until(Instant(0).plus_ms(120));
/// assert_eq!(sim.report().readings_delivered, 2);
/// ```
#[derive(Debug)]
pub struct SpectrumSim {
    cfg: SimConfig,
    now: Instant,
    queue: EventQueue<SimEvent>,
    nodes: Vec<SimNode>,
    /// Busy-period state per 802.15.4 channel (index = channel − 11).
    air: Vec<ChannelAir>,
    /// The legitimate nodes' O-QPSK modulator.
    modem: Dot154Modem,
    /// The attackers' diverted-BLE transmitter.
    btx: WazaBeeTx<BleModem>,
    /// The shared streaming demodulation primitive (stateless per capture).
    rx: WazaBeeRx<BleModem>,
    cluster_counter: u64,
    stats: SimStats,
    log: Vec<String>,
    /// `(source short address, value)` of every reading handed to the MAC.
    readings_sent: Vec<(u16, u16)>,
    /// After this instant application timers stop generating traffic.
    traffic_deadline: Option<Instant>,
    /// Instance-owned sim-time series recorder, when enabled.
    timeline: Option<Timeline>,
}

/// What one receiver got out of a closed cluster.
enum Heard {
    /// Decoded MAC frames plus the count of failed decode attempts.
    Frames(Vec<MacFrame>, u64),
    /// The raw superposed window (IDS monitors).
    Raw(Vec<Iq>),
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn alert_kind(alert: &Alert) -> &'static str {
    match alert {
        Alert::CrossProtocolFrame { .. } => "cross-protocol",
        Alert::UnexpectedDot154 { .. } => "unexpected-dot154",
        Alert::TrafficAnomaly { .. } => "traffic-anomaly",
    }
}

impl SpectrumSim {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let sps = cfg.samples_per_chip;
        SpectrumSim {
            cfg,
            now: Instant(0),
            queue: EventQueue::new(),
            nodes: Vec::new(),
            air: (0..16).map(|_| ChannelAir::default()).collect(),
            modem: Dot154Modem::new(sps),
            btx: WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps))
                .expect("LE 2M runs at the required 2 Msym/s"),
            rx: WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps))
                .expect("LE 2M runs at the required 2 Msym/s"),
            cluster_counter: 0,
            stats: SimStats::default(),
            log: Vec::new(),
            readings_sent: Vec::new(),
            traffic_deadline: None,
            timeline: None,
        }
    }

    fn spu(&self) -> u64 {
        self.cfg.samples_per_us()
    }

    fn node_rng(&self, idx: usize) -> ChaCha8Rng {
        let mixed =
            splitmix64(self.cfg.seed ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ChaCha8Rng::seed_from_u64(mixed)
    }

    fn push_node(&mut self, kind: NodeKind, channel: Dot154Channel, gain: f64) -> usize {
        let idx = self.nodes.len();
        let rng = self.node_rng(idx);
        self.nodes.push(SimNode {
            kind,
            channel,
            gain,
            rng,
            airtime_us: 0,
            tx_count: 0,
        });
        idx
    }

    /// Adds a legitimate Zigbee node at unit path gain.
    pub fn add_zigbee(&mut self, app: XbeeNode) -> usize {
        self.add_zigbee_with_gain(app, 1.0)
    }

    /// Adds a legitimate Zigbee node whose transmissions reach every
    /// receiver scaled by `gain` — the knob that creates capture margins.
    pub fn add_zigbee_with_gain(&mut self, app: XbeeNode, gain: f64) -> usize {
        let channel = app.config.channel;
        let interval = app.timer_interval_ms();
        let idx = self.push_node(
            NodeKind::Zigbee(Box::new(ZigbeeState::new(app))),
            channel,
            gain,
        );
        if let Some(ms) = interval {
            self.queue
                .schedule(self.now.plus_ms(ms), SimEvent::AppTimer { node: idx });
        }
        idx
    }

    /// Adds a WazaBee injector: a diverted BLE chip that keys scheduled
    /// 802.15.4 frames with no carrier sense. Schedule frames with
    /// [`SpectrumSim::inject_at`].
    pub fn add_wazabee_injector(&mut self, channel: Dot154Channel, gain: f64) -> usize {
        self.push_node(NodeKind::WazaBee, channel, gain)
    }

    /// Schedules a frame injection from a WazaBee node.
    pub fn inject_at(&mut self, node: usize, when: Instant, frame: MacFrame) {
        self.queue.schedule(when, SimEvent::Inject { node, frame });
    }

    /// Adds a reactive jammer.
    pub fn add_reactive_jammer(&mut self, channel: Dot154Channel, config: JammerConfig) -> usize {
        self.push_node(
            NodeKind::Jammer {
                config,
                jamming: false,
            },
            channel,
            1.0,
        )
    }

    /// Adds an ACK spoofer.
    pub fn add_ack_spoofer(&mut self, channel: Dot154Channel, gain: f64) -> usize {
        self.push_node(
            NodeKind::Spoofer {
                immediate: Default::default(),
            },
            channel,
            gain,
        )
    }

    /// Adds an energy-depletion flooder.
    pub fn add_flooder(&mut self, channel: Dot154Channel, config: FlooderConfig) -> usize {
        let idx = self.push_node(NodeKind::Flooder { config, seq: 0 }, channel, 1.0);
        self.queue.schedule(
            self.now.plus_us(config.interval_us),
            SimEvent::AppTimer { node: idx },
        );
        idx
    }

    /// Adds a passive IDS monitor on a channel.
    pub fn add_ids_monitor(&mut self, channel: Dot154Channel, config: MonitorConfig) -> usize {
        let monitor = ChannelMonitor::new(channel.center_mhz(), self.cfg.samples_per_chip, config);
        self.push_node(
            NodeKind::Ids {
                monitor: Box::new(monitor),
                alerts: Vec::new(),
            },
            channel,
            1.0,
        )
    }

    /// Stops application-layer traffic generation (sensor readings, flood
    /// frames) after `when`: timers that fire later neither produce frames
    /// nor reschedule. Running past the deadline then *drains* in-flight
    /// handshakes, so a measured delivery ratio is not skewed by readings
    /// handed to the MAC in the run's final microseconds.
    pub fn set_traffic_deadline(&mut self, when: Instant) {
        self.traffic_deadline = Some(when);
    }

    /// Enables the sim-time timeline: every `interval_us` of *simulated*
    /// time the run samples per-node airtime occupancy and transmission
    /// totals plus global delivery/contention counters into an
    /// instance-owned time series (timestamps in sim µs).
    ///
    /// Because sampling reads only simulation state, the recorded series —
    /// and the [`SpectrumSim::timeline_jsonl`] artifact — are deterministic:
    /// byte-identical across `WAZABEE_THREADS` worker counts and IQ chunk
    /// sizes, the same contract as the committed event log. Attack onset is
    /// directly visible: an injector or flooder node's `node.tx_total`
    /// series steps from zero at its first keyup.
    ///
    /// Call before `run_until`; the first sample lands one interval in.
    pub fn enable_timeline(&mut self, interval_us: u64) {
        let interval_us = interval_us.max(1);
        self.timeline = Some(Timeline {
            interval_us,
            // Capacity scales with wherever run_until lands; generous bound
            // so long runs keep every sample rather than silently evicting.
            series: SeriesSet::new(1 << 20),
            prev_airtime_us: Vec::new(),
        });
        self.queue
            .schedule(self.now.plus_us(interval_us), SimEvent::TimelineTick);
    }

    /// The recorded timeline series (empty set view when never enabled).
    pub fn timeline(&self) -> Option<&SeriesSet> {
        self.timeline.as_ref().map(|t| &t.series)
    }

    /// Renders the recorded timeline as JSON Lines, one
    /// `{"type":"timeseries",…}` record per sample (empty string when the
    /// timeline was never enabled).
    pub fn timeline_jsonl(&self) -> String {
        self.timeline
            .as_ref()
            .map(|t| t.series.to_jsonl())
            .unwrap_or_default()
    }

    /// Writes [`SpectrumSim::timeline_jsonl`] to `path`, truncating it.
    pub fn write_timeline_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.timeline_jsonl())
    }

    /// Samples every timeline series at the current sim time and schedules
    /// the next tick. Reads simulation state only — no RNG draws, no event
    /// log writes — so enabling the timeline cannot perturb the run.
    fn on_timeline_tick(&mut self) {
        let Some(mut tl) = self.timeline.take() else {
            return;
        };
        let t = self.now.0;
        tl.prev_airtime_us.resize(self.nodes.len(), 0);
        for (idx, node) in self.nodes.iter().enumerate() {
            let label = idx.to_string();
            let labels = [("node", label.as_str())];
            let delta = node.airtime_us.saturating_sub(tl.prev_airtime_us[idx]);
            tl.prev_airtime_us[idx] = node.airtime_us;
            tl.series.record(
                "node.airtime_occupancy",
                &labels,
                t,
                delta as f64 / tl.interval_us as f64,
            );
            tl.series
                .record("node.tx_total", &labels, t, node.tx_count as f64);
        }
        let sent = self.readings_sent.len() as u64;
        let delivered = self.delivered_count();
        tl.series.record("sim.readings_sent", &[], t, sent as f64);
        tl.series
            .record("sim.readings_delivered", &[], t, delivered as f64);
        tl.series.record(
            "sim.delivery_ratio",
            &[],
            t,
            if sent == 0 {
                1.0
            } else {
                delivered as f64 / sent as f64
            },
        );
        tl.series
            .record("sim.collisions", &[], t, self.stats.collisions as f64);
        tl.series
            .record("sim.cca_busy", &[], t, self.stats.cca_busy as f64);
        tl.series
            .record("sim.retries", &[], t, self.stats.retries as f64);
        tl.series
            .record("sim.jam_bursts", &[], t, self.stats.jam_bursts as f64);
        let next = self.now.plus_us(tl.interval_us);
        self.timeline = Some(tl);
        self.queue.schedule(next, SimEvent::TimelineTick);
    }

    /// Runs the event loop until `deadline` (inclusive).
    pub fn run_until(&mut self, deadline: Instant) {
        while let Some(when) = self.queue.peek_time() {
            if when > deadline {
                break;
            }
            let (when, event) = self.queue.pop().expect("peeked event exists");
            self.now = when;
            self.dispatch(event);
        }
        self.now = self.now.max(deadline);
    }

    fn dispatch(&mut self, event: SimEvent) {
        match event {
            SimEvent::AppTimer { node } => self.on_app_timer(node),
            SimEvent::CsmaCca { node } => self.on_csma_cca(node),
            SimEvent::SendImmediate { node } => self.on_send_immediate(node),
            SimEvent::Inject { node, frame } => {
                self.log.push(format!(
                    "t={} inject node={} seq={}",
                    self.now.0, node, frame.sequence
                ));
                self.transmit_wazabee(node, &frame);
            }
            SimEvent::JamBurst { node } => self.on_jam_burst(node),
            SimEvent::TxEnd { channel } => self.on_tx_end(channel),
            SimEvent::AckTimeout { node, seq } => self.on_ack_timeout(node, seq),
            SimEvent::TimelineTick => self.on_timeline_tick(),
        }
    }

    // ------------------------------------------------------------------
    // Application layer
    // ------------------------------------------------------------------

    fn on_app_timer(&mut self, idx: usize) {
        let now = self.now;
        if self.traffic_deadline.is_some_and(|d| now > d) {
            return;
        }
        let (frames, interval) = match &mut self.nodes[idx].kind {
            NodeKind::Zigbee(st) => (st.app.on_timer(now), st.app.timer_interval_ms()),
            NodeKind::Flooder { .. } => {
                self.flood(idx);
                return;
            }
            _ => return,
        };
        for frame in frames {
            if frame.frame_type == FrameType::Data {
                if let Address::Short(src) = frame.src {
                    if let Some(v) =
                        XbeePayload::from_bytes(&frame.payload).and_then(|p| p.as_reading())
                    {
                        self.readings_sent.push((src, v));
                    }
                }
            }
            if let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind {
                st.pending.push_back(frame);
            }
        }
        if let Some(ms) = interval {
            self.queue
                .schedule(now.plus_ms(ms), SimEvent::AppTimer { node: idx });
        }
        self.kick(idx);
    }

    fn flood(&mut self, idx: usize) {
        let (config, seq) = match &mut self.nodes[idx].kind {
            NodeKind::Flooder { config, seq } => {
                *seq = seq.wrapping_add(1);
                (*config, *seq)
            }
            _ => return,
        };
        // An opaque (non-XBee) payload: the victim ACKs the frame but records
        // nothing, so the flood burns its airtime without faking readings.
        let frame = MacFrame::data(config.pan, config.src, config.victim, seq, vec![0xF1, 0x00]);
        self.log
            .push(format!("t={} flood node={} seq={}", self.now.0, idx, seq));
        self.transmit_wazabee(idx, &frame);
        self.queue.schedule(
            self.now.plus_us(config.interval_us),
            SimEvent::AppTimer { node: idx },
        );
    }

    // ------------------------------------------------------------------
    // CSMA/CA MAC for Zigbee nodes
    // ------------------------------------------------------------------

    /// Starts a CSMA attempt for the head of a Zigbee node's queue when the
    /// node is idle; no-op otherwise.
    fn kick(&mut self, idx: usize) {
        let csma_cfg = self.cfg.csma;
        let now = self.now;
        let node = &mut self.nodes[idx];
        let NodeKind::Zigbee(st) = &mut node.kind else {
            return;
        };
        if st.transmitting
            || st.csma.is_some()
            || st.awaiting_ack.is_some()
            || st.pending.is_empty()
        {
            return;
        }
        let csma = CsmaBackoff::new(csma_cfg);
        let delay = csma.backoff(node.rng.gen());
        st.csma = Some(csma);
        self.queue
            .schedule(now.plus_us(delay), SimEvent::CsmaCca { node: idx });
    }

    fn cca_busy(&self, idx: usize) -> bool {
        let air = &self.air[self.nodes[idx].channel_idx()];
        if air.active == 0 {
            return false;
        }
        let gains: Vec<f64> = air
            .cluster
            .iter()
            .map(|t| self.nodes[t.source].gain)
            .collect();
        cca_power(&air.cluster, &gains, self.now, CCA_US, self.spu()) >= self.cfg.cca_threshold
    }

    fn on_csma_cca(&mut self, idx: usize) {
        let (armed, transmitting) = match &self.nodes[idx].kind {
            NodeKind::Zigbee(st) => (st.csma.is_some(), st.transmitting),
            _ => return,
        };
        if !armed {
            return;
        }
        if !transmitting && !self.cca_busy(idx) {
            self.start_zigbee_frame(idx);
            return;
        }
        self.stats.cca_busy += 1;
        wazabee_telemetry::counter!("sim.cca_busy").inc();
        self.log
            .push(format!("t={} cca-busy node={}", self.now.0, idx));
        let step = {
            let node = &mut self.nodes[idx];
            let NodeKind::Zigbee(st) = &mut node.kind else {
                return;
            };
            let draw = node.rng.gen();
            st.csma.as_mut().map(|c| c.channel_busy(draw))
        };
        match step {
            Some(CsmaStep::Backoff(delay)) => {
                self.queue
                    .schedule(self.now.plus_us(delay), SimEvent::CsmaCca { node: idx });
            }
            Some(CsmaStep::Failure) => {
                self.stats.csma_failures += 1;
                self.log
                    .push(format!("t={} csma-failure node={}", self.now.0, idx));
                self.attempt_failed(idx, "channel-access");
            }
            None => {}
        }
    }

    fn start_zigbee_frame(&mut self, idx: usize) {
        let prepared = {
            let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind else {
                return;
            };
            let Some(head) = st.pending.front() else {
                st.csma = None;
                return;
            };
            match Ppdu::new(head.to_psdu()) {
                Ok(ppdu) => {
                    st.transmitting = true;
                    Some((ppdu, head.sequence, head.ack_request))
                }
                Err(_) => None,
            }
        };
        match prepared {
            Some((ppdu, seq, ack_request)) => {
                let samples = {
                    let _s = wazabee_telemetry::stage!("sim.modulate");
                    self.modem.transmit(&ppdu)
                };
                self.begin_transmission(
                    idx,
                    samples,
                    TxKind::Frame,
                    TxOrigin::Head,
                    Some(seq),
                    ack_request,
                );
            }
            None => {
                // An unencodable (oversize) head frame: drop it rather than
                // wedge the queue behind it forever.
                if let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind {
                    st.pending.pop_front();
                    st.csma = None;
                }
                self.log
                    .push(format!("t={} drop-unencodable node={}", self.now.0, idx));
                self.kick(idx);
            }
        }
    }

    /// Head-of-queue success: frame acknowledged, or a no-ACK frame sent.
    fn complete_head(&mut self, idx: usize, why: &str) {
        let seq = {
            let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind else {
                return;
            };
            st.csma = None;
            st.awaiting_ack = None;
            st.retries = 0;
            st.pending.pop_front().map(|f| f.sequence)
        };
        if let Some(seq) = seq {
            self.log.push(format!(
                "t={} complete node={} seq={} why={}",
                self.now.0, idx, seq, why
            ));
        }
        self.kick(idx);
    }

    /// One transmission attempt failed (missed ACK or channel access):
    /// retry with a fresh CSMA attempt, or abandon past the retry budget.
    fn attempt_failed(&mut self, idx: usize, why: &str) {
        let max_retries = self.cfg.csma.max_frame_retries;
        let (abandoned, seq) = {
            let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind else {
                return;
            };
            st.csma = None;
            st.awaiting_ack = None;
            st.retries += 1;
            if st.retries > max_retries {
                st.retries = 0;
                (true, st.pending.pop_front().map(|f| f.sequence))
            } else {
                (false, st.pending.front().map(|f| f.sequence))
            }
        };
        if abandoned {
            self.stats.frames_abandoned += 1;
            self.log.push(format!(
                "t={} abandon node={} seq={:?} why={}",
                self.now.0, idx, seq, why
            ));
        } else {
            self.stats.retries += 1;
            wazabee_telemetry::counter!("sim.retries").inc();
            self.log.push(format!(
                "t={} retry node={} seq={:?} why={}",
                self.now.0, idx, seq, why
            ));
        }
        self.kick(idx);
    }

    fn on_ack_timeout(&mut self, idx: usize, seq: u8) {
        let pending = matches!(
            &self.nodes[idx].kind,
            NodeKind::Zigbee(st) if st.awaiting_ack == Some(seq)
        );
        if pending {
            self.log.push(format!(
                "t={} ack-timeout node={} seq={}",
                self.now.0, idx, seq
            ));
            self.attempt_failed(idx, "no-ack");
        }
    }

    fn on_send_immediate(&mut self, idx: usize) {
        enum Radio {
            Oqpsk,
            Diverted,
        }
        let prepared = match &mut self.nodes[idx].kind {
            NodeKind::Zigbee(st) => match st.immediate.pop_front() {
                Some(frame) if !st.transmitting => {
                    st.transmitting = true;
                    Some((frame, Radio::Oqpsk))
                }
                Some(_) => {
                    // Half-duplex: the radio is keyed, the ACK is lost.
                    self.log
                        .push(format!("t={} ack-suppressed node={}", self.now.0, idx));
                    None
                }
                None => None,
            },
            NodeKind::Spoofer { immediate } => immediate.pop_front().map(|f| (f, Radio::Diverted)),
            _ => None,
        };
        let Some((frame, radio)) = prepared else {
            return;
        };
        match radio {
            Radio::Oqpsk => {
                let Ok(ppdu) = Ppdu::new(frame.to_psdu()) else {
                    return;
                };
                let samples = {
                    let _s = wazabee_telemetry::stage!("sim.modulate");
                    self.modem.transmit(&ppdu)
                };
                self.begin_transmission(
                    idx,
                    samples,
                    TxKind::Frame,
                    TxOrigin::Immediate,
                    Some(frame.sequence),
                    false,
                );
            }
            Radio::Diverted => {
                self.stats.acks_spoofed += 1;
                wazabee_telemetry::counter!("sim.acks_spoofed").inc();
                self.log.push(format!(
                    "t={} spoofed-ack node={} seq={}",
                    self.now.0, idx, frame.sequence
                ));
                self.transmit_wazabee(idx, &frame);
            }
        }
    }

    // ------------------------------------------------------------------
    // The air
    // ------------------------------------------------------------------

    fn transmit_wazabee(&mut self, idx: usize, frame: &MacFrame) {
        let Ok(ppdu) = Ppdu::new(frame.to_psdu()) else {
            return;
        };
        let samples = {
            let _s = wazabee_telemetry::stage!("sim.modulate");
            self.btx.transmit(&ppdu)
        };
        self.begin_transmission(
            idx,
            samples,
            TxKind::Frame,
            TxOrigin::Attacker,
            Some(frame.sequence),
            frame.ack_request,
        );
    }

    fn begin_transmission(
        &mut self,
        source: usize,
        samples: Vec<Iq>,
        kind: TxKind,
        origin: TxOrigin,
        seq: Option<u8>,
        ack_request: bool,
    ) {
        let spu = self.spu();
        let duration_us = (samples.len() as u64).div_ceil(spu).max(1);
        let start = self.now;
        let end = start.plus_us(duration_us);
        let ch = self.nodes[source].channel_idx();
        let _span = wazabee_telemetry::span!(
            "sim.tx",
            node = source,
            chan = ch + 11,
            dur_us = duration_us
        );
        self.nodes[source].airtime_us += duration_us;
        self.nodes[source].tx_count += 1;
        {
            let node = source.to_string();
            let channel = (ch + 11).to_string();
            wazabee_telemetry::labeled_counter!("sim.tx").inc(&[
                ("node", &node),
                ("channel", &channel),
                ("kind", self.nodes[source].kind_name()),
            ]);
        }
        self.log.push(format!(
            "t={} keyup node={} kind={} seq={:?} dur={}",
            start.0,
            source,
            self.nodes[source].kind_name(),
            seq,
            duration_us
        ));
        let air = &mut self.air[ch];
        if air.cluster.is_empty() {
            air.cluster_start = start;
        }
        air.cluster.push(Transmission {
            source,
            start,
            end,
            samples,
            kind,
            origin,
            seq,
            ack_request,
            finalized: false,
        });
        air.active += 1;
        self.queue.schedule(end, SimEvent::TxEnd { channel: ch });
        if kind == TxKind::Frame {
            self.trigger_jammers(ch, source);
        }
    }

    fn trigger_jammers(&mut self, ch: usize, source: usize) {
        let now = self.now;
        for j in 0..self.nodes.len() {
            if j == source || self.nodes[j].channel_idx() != ch {
                continue;
            }
            let node = &mut self.nodes[j];
            let NodeKind::Jammer { config, jamming } = &mut node.kind else {
                continue;
            };
            if *jamming {
                continue;
            }
            let draw: u64 = node.rng.gen();
            if ((draw % 1_000) as f64) / 1_000.0 >= config.trigger_probability {
                continue;
            }
            *jamming = true;
            let when = now.plus_us(config.reaction_us);
            self.queue.schedule(when, SimEvent::JamBurst { node: j });
        }
    }

    fn on_jam_burst(&mut self, idx: usize) {
        let (burst_us, power) = match &self.nodes[idx].kind {
            NodeKind::Jammer { config, .. } => (config.burst_us, config.power),
            _ => return,
        };
        let len = (burst_us * self.spu()) as usize;
        let mut samples = vec![Iq::ZERO; len];
        let seed: u64 = self.nodes[idx].rng.gen();
        AwgnSource::new(seed, (power / 2.0).sqrt()).add_to(&mut samples);
        self.stats.jam_bursts += 1;
        self.begin_transmission(idx, samples, TxKind::Jam, TxOrigin::Attacker, None, false);
    }

    fn on_tx_end(&mut self, ch: usize) {
        let now = self.now;
        let mut finished: Vec<(usize, TxOrigin, Option<u8>, bool)> = Vec::new();
        {
            let air = &mut self.air[ch];
            for t in air.cluster.iter_mut() {
                if !t.finalized && t.end <= now {
                    t.finalized = true;
                    air.active -= 1;
                    finished.push((t.source, t.origin, t.seq, t.ack_request));
                }
            }
        }
        for (src, origin, seq, ack_request) in finished {
            let mut complete = false;
            let mut await_seq = None;
            match &mut self.nodes[src].kind {
                NodeKind::Zigbee(st) => {
                    st.transmitting = false;
                    if origin == TxOrigin::Head {
                        if ack_request {
                            let s = seq.unwrap_or(0);
                            st.awaiting_ack = Some(s);
                            await_seq = Some(s);
                        } else {
                            complete = true;
                        }
                    }
                }
                NodeKind::Jammer { jamming, .. } => *jamming = false,
                _ => {}
            }
            if let Some(s) = await_seq {
                self.queue.schedule(
                    now.plus_us(self.cfg.ack_wait_us),
                    SimEvent::AckTimeout { node: src, seq: s },
                );
            }
            if complete {
                self.complete_head(src, "sent");
            }
        }
        if self.air[ch].active == 0 && !self.air[ch].cluster.is_empty() {
            self.close_cluster(ch);
        }
    }

    // ------------------------------------------------------------------
    // Cluster close: superpose, demodulate, deliver
    // ------------------------------------------------------------------

    /// Feeds a receiver window through the streaming receiver in
    /// `iq_chunk`-sized pushes, returning recovered frames and the count of
    /// committed failed attempts.
    fn decode_buffer(&self, buf: &IqBuf) -> (Vec<MacFrame>, u64) {
        let _s = wazabee_telemetry::stage!("sim.demod");
        let mut stream = self.rx.stream();
        let mut results = Vec::new();
        let chunk = self.cfg.iq_chunk.max(1);
        let mut from = 0;
        while from < buf.len() {
            let to = (from + chunk).min(buf.len());
            results.extend(stream.push_planar(buf.slice(from, to)));
            from = to;
        }
        results.extend(stream.finish());
        let mut frames = Vec::new();
        let mut failures = 0u64;
        for r in results {
            match r {
                Ok(p) if p.fcs_ok() => match MacFrame::from_psdu(&p.psdu) {
                    Some(f) => frames.push(f),
                    None => failures += 1,
                },
                _ => failures += 1,
            }
        }
        (frames, failures)
    }

    fn close_cluster(&mut self, ch: usize) {
        let air = std::mem::take(&mut self.air[ch]);
        let cluster = air.cluster;
        if cluster.is_empty() {
            return;
        }
        let cluster_id = self.cluster_counter;
        self.cluster_counter += 1;
        let start = air.cluster_start;
        let end = self.now;
        let spu = self.spu();
        let fs = self.cfg.sample_rate();
        let gains: Vec<f64> = cluster.iter().map(|t| self.nodes[t.source].gain).collect();

        // A demodulation-level collision: two or more *frames* overlapped.
        let frames_in_cluster: Vec<&Transmission> =
            cluster.iter().filter(|t| t.kind == TxKind::Frame).collect();
        let collided = frames_in_cluster.iter().enumerate().any(|(i, a)| {
            frames_in_cluster[i + 1..]
                .iter()
                .any(|b| a.start < b.end && b.start < a.end)
        });
        if collided {
            self.stats.collisions += 1;
            wazabee_telemetry::counter!("sim.collisions").inc();
            self.log.push(format!(
                "t={} collision ch={} cluster={} frames={}",
                end.0,
                ch + 11,
                cluster_id,
                frames_in_cluster.len()
            ));
        }

        // Phase 1 (immutable): superpose and demodulate per receiver. With
        // no per-receiver noise every listener hears bit-identical samples,
        // so one decode is shared — an exact, not approximate, fast path.
        let coherent = self.cfg.snr_db.is_none();
        let mut shared: Option<(Vec<MacFrame>, u64)> = None;
        let mut deliveries: Vec<(usize, Heard)> = Vec::new();
        for idx in 0..self.nodes.len() {
            let node = &self.nodes[idx];
            if node.channel_idx() != ch || cluster.iter().any(|t| t.source == idx) {
                continue;
            }
            let is_ids = matches!(node.kind, NodeKind::Ids { .. });
            let decodes = matches!(node.kind, NodeKind::Zigbee(_) | NodeKind::Spoofer { .. });
            if !is_ids && !decodes {
                continue;
            }
            if decodes && coherent {
                if let Some((frames, fails)) = &shared {
                    deliveries.push((idx, Heard::Frames(frames.clone(), *fails)));
                    continue;
                }
            }
            // Parent span for this receiver's whole listen window: the
            // per-attempt `rx.decode` spans opened inside the streaming
            // receiver nest under it, so one cluster's causal tree reads
            // sim.rx → rx.decode → stream stages in the Perfetto view.
            let _span = wazabee_telemetry::span!(
                "sim.rx",
                node = idx,
                chan = ch + 11,
                cluster = cluster_id
            );
            let mut buf = {
                let _s = wazabee_telemetry::stage!("sim.superpose");
                superpose_planar(&cluster, &gains, start, end, spu)
            };
            if self.cfg.cfo_hz != 0.0 {
                Nco::new(self.cfg.cfo_hz, fs).mix_planar_in_place(&mut buf);
            }
            if self.cfg.timing_offset != 0.0 {
                fractional_delay_planar_in_place(&mut buf, self.cfg.timing_offset);
            }
            if let Some(snr) = self.cfg.snr_db {
                let sig = gains.iter().fold(0.0f64, |m, &g| m.max(g * g)).max(1e-12);
                let seed = splitmix64(
                    self.cfg.seed
                        ^ cluster_id.wrapping_mul(0xA24B_AED4_963E_E407)
                        ^ (idx as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
                );
                AwgnSource::from_snr_db(seed, snr, sig).add_to_planar(&mut buf);
            }
            if is_ids {
                // The IDS monitors run interleaved spectral analysis; widen
                // only for them — decoding receivers stay planar end to end.
                deliveries.push((idx, Heard::Raw(buf.to_interleaved())));
            } else {
                let decoded = self.decode_buffer(&buf);
                if coherent {
                    shared = Some(decoded.clone());
                }
                deliveries.push((idx, Heard::Frames(decoded.0, decoded.1)));
            }
        }

        // Phase 2 (mutable): hand each receiver what it heard.
        for (idx, heard) in deliveries {
            match heard {
                Heard::Frames(frames, failures) => {
                    self.stats.frames_decoded += frames.len() as u64;
                    self.stats.decode_failures += failures;
                    {
                        let node = idx.to_string();
                        wazabee_telemetry::labeled_counter!("sim.rx.frames")
                            .add(&[("node", &node)], frames.len() as u64);
                    }
                    match &self.nodes[idx].kind {
                        NodeKind::Zigbee(_) => self.zigbee_rx(idx, frames),
                        NodeKind::Spoofer { .. } => self.spoofer_rx(idx, frames),
                        _ => {}
                    }
                }
                Heard::Raw(buf) => self.ids_rx(idx, &buf),
            }
        }
    }

    fn zigbee_rx(&mut self, idx: usize, frames: Vec<MacFrame>) {
        let now = self.now;
        for frame in frames {
            self.log.push(format!(
                "t={} rx node={} type={:?} seq={}",
                now.0, idx, frame.frame_type, frame.sequence
            ));
            if frame.frame_type == FrameType::Ack {
                let matched = matches!(
                    &self.nodes[idx].kind,
                    NodeKind::Zigbee(st) if st.awaiting_ack == Some(frame.sequence)
                );
                if matched {
                    self.complete_head(idx, "acked");
                }
                continue;
            }
            let replies = match &mut self.nodes[idx].kind {
                NodeKind::Zigbee(st) => st.app.on_receive(&frame, now),
                _ => Vec::new(),
            };
            for reply in replies {
                if reply.frame_type == FrameType::Ack {
                    if let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind {
                        st.immediate.push_back(reply);
                    }
                    self.queue.schedule(
                        now.plus_us(TURNAROUND_US),
                        SimEvent::SendImmediate { node: idx },
                    );
                } else if let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind {
                    st.pending.push_back(reply);
                }
            }
        }
        self.kick(idx);
    }

    fn spoofer_rx(&mut self, idx: usize, frames: Vec<MacFrame>) {
        let now = self.now;
        for frame in frames {
            let spoofable = frame.frame_type == FrameType::Data
                && frame.ack_request
                && matches!(frame.dest, Address::Short(d) if d != BROADCAST_SHORT);
            if !spoofable {
                continue;
            }
            if let NodeKind::Spoofer { immediate } = &mut self.nodes[idx].kind {
                immediate.push_back(MacFrame::ack(frame.sequence));
            }
            self.queue.schedule(
                now.plus_us(self.cfg.spoof_delay_us),
                SimEvent::SendImmediate { node: idx },
            );
        }
    }

    fn ids_rx(&mut self, idx: usize, buf: &[Iq]) {
        let now = self.now;
        let new_alerts = match &mut self.nodes[idx].kind {
            NodeKind::Ids { monitor, .. } => monitor.observe(buf),
            _ => return,
        };
        for alert in &new_alerts {
            self.log.push(format!(
                "t={} alert node={} kind={}",
                now.0,
                idx,
                alert_kind(alert)
            ));
        }
        if let NodeKind::Ids { alerts, .. } = &mut self.nodes[idx].kind {
            alerts.extend(new_alerts.into_iter().map(|a| (now, a)));
        }
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The run's aggregate counters so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The committed event log: one deterministic line per MAC/PHY event,
    /// byte-identical across thread counts and IQ chunk sizes.
    pub fn event_log(&self) -> &[String] {
        &self.log
    }

    /// All nodes, index-aligned with the handles `add_*` returned.
    pub fn nodes(&self) -> &[SimNode] {
        &self.nodes
    }

    /// A node by handle.
    pub fn node(&self, idx: usize) -> &SimNode {
        &self.nodes[idx]
    }

    /// The XBee model behind a Zigbee node handle.
    pub fn zigbee(&self, idx: usize) -> Option<&XbeeNode> {
        match &self.nodes[idx].kind {
            NodeKind::Zigbee(st) => Some(&st.app),
            _ => None,
        }
    }

    /// Alerts an IDS monitor node has raised, stamped with cluster close
    /// time. Empty for non-IDS nodes.
    pub fn alerts(&self, idx: usize) -> &[(Instant, Alert)] {
        match &self.nodes[idx].kind {
            NodeKind::Ids { alerts, .. } => alerts,
            _ => &[],
        }
    }

    /// Readings (sent so far) that have reached a coordinator's display.
    fn delivered_count(&self) -> u64 {
        let mut delivered = 0u64;
        for &(addr, value) in &self.readings_sent {
            let arrived = self.nodes.iter().any(|n| match &n.kind {
                NodeKind::Zigbee(st) => {
                    st.app.role() == NodeRole::Coordinator
                        && st
                            .app
                            .readings()
                            .iter()
                            .any(|r| r.reported_by == addr && r.value == value)
                }
                _ => false,
            });
            if arrived {
                delivered += 1;
            }
        }
        delivered
    }

    /// Summarises the run.
    pub fn report(&self) -> SimReport {
        let delivered = self.delivered_count();
        let sent = self.readings_sent.len() as u64;
        SimReport {
            readings_sent: sent,
            readings_delivered: delivered,
            delivery_ratio: if sent == 0 {
                1.0
            } else {
                delivered as f64 / sent as f64
            },
            stats: self.stats.clone(),
            node_airtime_us: self.nodes.iter().map(|n| n.airtime_us).collect(),
            sim_time_us: self.now.0,
        }
    }
}
