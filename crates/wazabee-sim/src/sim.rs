//! The discrete-event spectrum simulator: a channel-sharded facade.
//!
//! Every transmission is modulated to IQ by the real modems and placed on a
//! per-channel sample timeline; when a busy period closes, each listening
//! receiver demodulates the *superposed* waveform with the real streaming
//! receiver. Collisions, capture, CFO tolerance and the WazaBee
//! cross-modulation therefore emerge from the PHY arithmetic — the event
//! loop only decides *when* radios key up.
//!
//! Zigbee nodes contend with unslotted CSMA/CA (`wazabee-dot154::csma`):
//! backoff, a CCA energy measurement over the live spectrum buffer, ACK
//! wait, and `macMaxFrameRetries` retransmissions. Attackers ignore carrier
//! sense, exactly as a diverted BLE chip would.
//!
//! # Sharded execution
//!
//! The 16 IEEE 802.15.4 channels are physically independent spectra: a
//! transmission deposits energy only on its own channel, CCA integrates only
//! its own channel's cluster, and jammers trigger only on same-channel
//! keyups. [`SpectrumSim`] therefore partitions the event timeline by
//! channel — each populated channel becomes a [`crate::shard::Shard`], a
//! self-contained event engine with its own sub-queue, busy-period state and
//! nodes — and advances the shards concurrently in *conservative lookahead
//! windows* of `64 × (CCA_US + TURNAROUND_US)` simulated microseconds. No
//! event ever crosses shards, so the windows are pacing (bounded skew
//! between shards, regular log-merge points), not a correctness mechanism.
//!
//! Determinism is a hard contract, not best-effort: the committed event
//! log, [`SimReport`] and timeline JSONL are byte-identical across
//! `WAZABEE_THREADS` / [`SimConfig::threads`] values. Each shard commits
//! `(sim-time, line)` log entries; the facade concatenates shard logs in
//! shard-creation order and stable-sorts by time, so cross-channel ties
//! resolve identically at any worker count. Single-channel runs execute the
//! exact event sequence of the unsharded engine (same queue tie-breaking,
//! same RNG draws, same noise seeds keyed on global node ids).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wazabee_dot154::csma::{CCA_US, TURNAROUND_US};
use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::Dot154Channel;
use wazabee_dsp::par::{default_threads, par_map_with};
use wazabee_ids::{Alert, ChannelMonitor, MonitorConfig};
use wazabee_radio::Instant;
use wazabee_telemetry::SeriesSet;
use wazabee_zigbee::XbeeNode;

use crate::config::SimConfig;
use crate::node::{FlooderConfig, JammerConfig, NodeKind, SimNode, ZigbeeState};
use crate::shard::{splitmix64, Shard, SimEvent};

/// Sim-time-driven time-series recorder (see
/// [`SpectrumSim::enable_timeline`]).
///
/// Owned by the simulation instance — *not* the global telemetry registry —
/// so parallel sweep cells each record their own series and the exported
/// `timeseries.jsonl` stays byte-identical across `WAZABEE_THREADS` and IQ
/// chunk sizes. Timestamps are simulated microseconds; sampling reads only
/// simulation state, never the wall clock.
#[derive(Debug)]
struct Timeline {
    interval_us: u64,
    /// Sim instant of the next sample boundary.
    next_tick: Instant,
    series: SeriesSet,
    /// Cumulative per-node airtime at the previous tick, for occupancy
    /// deltas. Resized defensively every tick so nodes added *after*
    /// `enable_timeline` are picked up instead of panicking the sampler.
    prev_airtime_us: Vec<u64>,
}

/// Aggregate MAC/PHY counters over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Busy periods in which two or more frame transmissions overlapped.
    pub collisions: u64,
    /// Busy CCA measurements.
    pub cca_busy: u64,
    /// Frame retransmissions (missed ACK or channel-access failure).
    pub retries: u64,
    /// CSMA attempts that died with `CHANNEL_ACCESS_FAILURE`.
    pub csma_failures: u64,
    /// Frames abandoned after exhausting `macMaxFrameRetries`.
    pub frames_abandoned: u64,
    /// Forged acknowledgements keyed by ACK-spoofer nodes.
    pub acks_spoofed: u64,
    /// Jamming bursts keyed by reactive jammers.
    pub jam_bursts: u64,
    /// MAC frames recovered by receivers from superposed spectrum.
    pub frames_decoded: u64,
    /// Committed decode attempts that failed (sync hit but no frame).
    pub decode_failures: u64,
}

impl SimStats {
    /// Adds another shard's counters into this total.
    pub(crate) fn accumulate(&mut self, o: &SimStats) {
        self.collisions += o.collisions;
        self.cca_busy += o.cca_busy;
        self.retries += o.retries;
        self.csma_failures += o.csma_failures;
        self.frames_abandoned += o.frames_abandoned;
        self.acks_spoofed += o.acks_spoofed;
        self.jam_bursts += o.jam_bursts;
        self.frames_decoded += o.frames_decoded;
        self.decode_failures += o.decode_failures;
    }
}

/// Summary of a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Sensor readings handed to the MAC for transmission.
    pub readings_sent: u64,
    /// Of those, readings that reached a coordinator's display.
    pub readings_delivered: u64,
    /// `readings_delivered / readings_sent` (1.0 when nothing was sent).
    pub delivery_ratio: f64,
    /// MAC/PHY counters.
    pub stats: SimStats,
    /// Per-node keyed-up time, in µs (index-aligned with node handles).
    pub node_airtime_us: Vec<u64>,
    /// Simulated time elapsed, in µs.
    pub sim_time_us: u64,
}

/// The PHY-in-the-loop shared-spectrum simulator.
///
/// # Examples
///
/// ```
/// use wazabee_dot154::Dot154Channel;
/// use wazabee_radio::Instant;
/// use wazabee_sim::{SimConfig, SpectrumSim};
/// use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode};
///
/// let ch = Dot154Channel::new(14).unwrap();
/// let mut sim = SpectrumSim::new(SimConfig::ideal());
/// sim.add_zigbee(XbeeNode::new(
///     NodeConfig { pan: 0x1234, short_addr: 0x0042, channel: ch },
///     NodeRole::Coordinator,
/// ));
/// sim.add_zigbee(XbeeNode::new(
///     NodeConfig { pan: 0x1234, short_addr: 0x0063, channel: ch },
///     NodeRole::Sensor { interval_ms: 50 },
/// ));
/// sim.run_until(Instant(0).plus_ms(120));
/// assert_eq!(sim.report().readings_delivered, 2);
/// ```
#[derive(Debug)]
pub struct SpectrumSim {
    cfg: SimConfig,
    now: Instant,
    /// Conservative lookahead window, in simulated µs: shards advance at
    /// most this far before resynchronising with the facade.
    horizon_us: u64,
    /// One engine per populated channel, in creation order (the log-merge
    /// tie-break order).
    shards: Vec<Shard>,
    /// Channel index (channel − 11) → shard index.
    by_channel: [Option<usize>; 16],
    /// Global node handle → `(shard index, shard-local index)`.
    node_map: Vec<(usize, usize)>,
    /// The merged committed event log.
    log: Vec<String>,
    /// After this instant application timers stop generating traffic.
    traffic_deadline: Option<Instant>,
    /// Instance-owned sim-time series recorder, when enabled.
    timeline: Option<Timeline>,
}

impl SpectrumSim {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        SpectrumSim {
            cfg,
            now: Instant(0),
            horizon_us: 64 * (CCA_US + TURNAROUND_US),
            shards: Vec::new(),
            by_channel: [None; 16],
            node_map: Vec::new(),
            log: Vec::new(),
            traffic_deadline: None,
            timeline: None,
        }
    }

    fn node_rng(&self, idx: usize) -> ChaCha8Rng {
        let mixed =
            splitmix64(self.cfg.seed ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ChaCha8Rng::seed_from_u64(mixed)
    }

    /// The shard owning `channel`, created on first use.
    fn shard_for(&mut self, channel: Dot154Channel) -> usize {
        let ci = (channel.number() - 11) as usize;
        if let Some(s) = self.by_channel[ci] {
            return s;
        }
        let mut shard = Shard::new(self.cfg, channel.number());
        shard.now = self.now;
        shard.traffic_deadline = self.traffic_deadline;
        self.shards.push(shard);
        let s = self.shards.len() - 1;
        self.by_channel[ci] = Some(s);
        s
    }

    /// Registers a node, returning its global handle. The node lives in its
    /// channel's shard; logs, labels and seeds all use the global id, so
    /// artifacts are independent of the channel→shard mapping.
    fn push_node(&mut self, kind: NodeKind, channel: Dot154Channel, gain: f64) -> usize {
        let gid = self.node_map.len();
        let rng = self.node_rng(gid);
        let s = self.shard_for(channel);
        let local = self.shards[s].push_node(SimNode {
            id: gid,
            kind,
            channel,
            gain,
            rng,
            airtime_us: 0,
            tx_count: 0,
        });
        self.node_map.push((s, local));
        gid
    }

    /// Adds a legitimate Zigbee node at unit path gain.
    pub fn add_zigbee(&mut self, app: XbeeNode) -> usize {
        self.add_zigbee_with_gain(app, 1.0)
    }

    /// Adds a legitimate Zigbee node whose transmissions reach every
    /// receiver scaled by `gain` — the knob that creates capture margins.
    pub fn add_zigbee_with_gain(&mut self, app: XbeeNode, gain: f64) -> usize {
        let channel = app.config.channel;
        let interval = app.timer_interval_ms();
        let gid = self.push_node(
            NodeKind::Zigbee(Box::new(ZigbeeState::new(app))),
            channel,
            gain,
        );
        if let Some(ms) = interval {
            let (s, local) = self.node_map[gid];
            let when = self.now.plus_ms(ms);
            self.shards[s]
                .queue
                .schedule(when, SimEvent::AppTimer { node: local });
        }
        gid
    }

    /// Adds a WazaBee injector: a diverted BLE chip that keys scheduled
    /// 802.15.4 frames with no carrier sense. Schedule frames with
    /// [`SpectrumSim::inject_at`].
    pub fn add_wazabee_injector(&mut self, channel: Dot154Channel, gain: f64) -> usize {
        self.push_node(NodeKind::WazaBee, channel, gain)
    }

    /// Schedules a frame injection from a WazaBee node.
    pub fn inject_at(&mut self, node: usize, when: Instant, frame: MacFrame) {
        let (s, local) = self.node_map[node];
        self.shards[s]
            .queue
            .schedule(when, SimEvent::Inject { node: local, frame });
    }

    /// Adds a reactive jammer.
    pub fn add_reactive_jammer(&mut self, channel: Dot154Channel, config: JammerConfig) -> usize {
        self.push_node(
            NodeKind::Jammer {
                config,
                jamming: false,
            },
            channel,
            1.0,
        )
    }

    /// Adds an ACK spoofer.
    pub fn add_ack_spoofer(&mut self, channel: Dot154Channel, gain: f64) -> usize {
        self.push_node(
            NodeKind::Spoofer {
                immediate: Default::default(),
            },
            channel,
            gain,
        )
    }

    /// Adds an energy-depletion flooder.
    pub fn add_flooder(&mut self, channel: Dot154Channel, config: FlooderConfig) -> usize {
        let gid = self.push_node(NodeKind::Flooder { config, seq: 0 }, channel, 1.0);
        let (s, local) = self.node_map[gid];
        let when = self.now.plus_us(config.interval_us);
        self.shards[s]
            .queue
            .schedule(when, SimEvent::AppTimer { node: local });
        gid
    }

    /// Adds a passive IDS monitor on a channel.
    pub fn add_ids_monitor(&mut self, channel: Dot154Channel, config: MonitorConfig) -> usize {
        let monitor = ChannelMonitor::new(channel.center_mhz(), self.cfg.samples_per_chip, config);
        self.push_node(
            NodeKind::Ids {
                monitor: Box::new(monitor),
                alerts: Vec::new(),
            },
            channel,
            1.0,
        )
    }

    /// Stops application-layer traffic generation (sensor readings, flood
    /// frames) after `when`: timers that fire later neither produce frames
    /// nor reschedule. Running past the deadline then *drains* in-flight
    /// handshakes, so a measured delivery ratio is not skewed by readings
    /// handed to the MAC in the run's final microseconds.
    pub fn set_traffic_deadline(&mut self, when: Instant) {
        self.traffic_deadline = Some(when);
        for s in &mut self.shards {
            s.traffic_deadline = Some(when);
        }
    }

    /// Enables the sim-time timeline: every `interval_us` of *simulated*
    /// time the run samples per-node airtime occupancy and transmission
    /// totals plus global delivery/contention counters into an
    /// instance-owned time series (timestamps in sim µs).
    ///
    /// Samples are taken at the tick boundary after every event at or
    /// before the tick instant has been applied — a shard-order-free
    /// definition, so the recorded series and the
    /// [`SpectrumSim::timeline_jsonl`] artifact are byte-identical across
    /// `WAZABEE_THREADS` worker counts and IQ chunk sizes, the same
    /// contract as the committed event log. Attack onset is directly
    /// visible: an injector or flooder node's `node.tx_total` series steps
    /// from zero at its first keyup.
    ///
    /// Call before `run_until`; the first sample lands one interval in.
    /// Nodes may be added after enabling — the sampler resizes its per-node
    /// state on every tick.
    pub fn enable_timeline(&mut self, interval_us: u64) {
        let interval_us = interval_us.max(1);
        self.timeline = Some(Timeline {
            interval_us,
            next_tick: self.now.plus_us(interval_us),
            // Capacity scales with wherever run_until lands; generous bound
            // so long runs keep every sample rather than silently evicting.
            series: SeriesSet::new(1 << 20),
            prev_airtime_us: Vec::new(),
        });
    }

    /// The recorded timeline series (empty set view when never enabled).
    pub fn timeline(&self) -> Option<&SeriesSet> {
        self.timeline.as_ref().map(|t| &t.series)
    }

    /// Renders the recorded timeline as JSON Lines, one
    /// `{"type":"timeseries",…}` record per sample (empty string when the
    /// timeline was never enabled).
    pub fn timeline_jsonl(&self) -> String {
        self.timeline
            .as_ref()
            .map(|t| t.series.to_jsonl())
            .unwrap_or_default()
    }

    /// Writes [`SpectrumSim::timeline_jsonl`] to `path`, truncating it.
    pub fn write_timeline_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.timeline_jsonl())
    }

    /// Runs the event loop until `deadline` (inclusive).
    ///
    /// Shards advance concurrently when [`SimConfig::threads`] (or the
    /// `WAZABEE_THREADS` default) exceeds 1 and more than one channel is
    /// populated; committed artifacts are identical either way.
    pub fn run_until(&mut self, deadline: Instant) {
        loop {
            let tick = self
                .timeline
                .as_ref()
                .map(|t| t.next_tick)
                .filter(|&t| t > self.now && t <= deadline);
            let target = tick.unwrap_or(deadline);
            self.advance_shards(target);
            self.merge_logs();
            self.now = self.now.max(target);
            match tick {
                Some(t) => self.sample_timeline(t),
                None => break,
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Advances every shard to `target`, in conservative `horizon_us`
    /// windows when running parallel. Decode-level parallelism (fanning a
    /// cluster's receivers over workers) is granted only to a lone shard;
    /// with several shards the thread budget is spent across shards
    /// instead, never nested.
    fn advance_shards(&mut self, target: Instant) {
        if target <= self.now || self.shards.is_empty() {
            return;
        }
        let threads = self.cfg.threads.unwrap_or_else(default_threads).max(1);
        let decode_threads = if self.shards.len() == 1 { threads } else { 1 };
        for s in &mut self.shards {
            s.decode_threads = decode_threads;
        }
        if threads <= 1 || self.shards.len() <= 1 {
            let _s = wazabee_telemetry::stage!("sim.shard.advance");
            for s in &mut self.shards {
                s.advance_until(target);
            }
            return;
        }
        let mut t = self.now;
        while t < target {
            t = Instant(t.0.saturating_add(self.horizon_us)).min(target);
            let _s = wazabee_telemetry::stage!("sim.shard.advance");
            let shards = std::mem::take(&mut self.shards);
            self.shards = par_map_with(Some(threads), shards, |mut s| {
                s.advance_until(t);
                s
            });
        }
    }

    /// Drains every shard's committed log entries into the merged log:
    /// concatenate in shard-creation order, stable-sort by sim time. Ties
    /// therefore resolve by (time, shard, commit order) — a total order
    /// independent of worker count.
    fn merge_logs(&mut self) {
        match self.shards.len() {
            0 => {}
            1 => self
                .log
                .extend(self.shards[0].take_log().into_iter().map(|(_, l)| l)),
            _ => {
                let _s = wazabee_telemetry::stage!("sim.shard.merge");
                let mut merged: Vec<(u64, String)> = Vec::new();
                for s in &mut self.shards {
                    merged.extend(s.take_log());
                }
                merged.sort_by_key(|e| e.0);
                self.log.extend(merged.into_iter().map(|(_, l)| l));
            }
        }
    }

    /// Samples every timeline series at tick instant `at` and arms the next
    /// tick. Reads simulation state only — no RNG draws, no event log
    /// writes — so enabling the timeline cannot perturb the run.
    fn sample_timeline(&mut self, at: Instant) {
        let Some(mut tl) = self.timeline.take() else {
            return;
        };
        let _s = wazabee_telemetry::stage!("sim.shard.sample");
        let t = at.0;
        tl.prev_airtime_us.resize(self.node_map.len(), 0);
        for (gid, &(s, l)) in self.node_map.iter().enumerate() {
            let node = &self.shards[s].nodes[l];
            let label = gid.to_string();
            let labels = [("node", label.as_str())];
            let delta = node.airtime_us.saturating_sub(tl.prev_airtime_us[gid]);
            tl.prev_airtime_us[gid] = node.airtime_us;
            tl.series.record(
                "node.airtime_occupancy",
                &labels,
                t,
                delta as f64 / tl.interval_us as f64,
            );
            tl.series
                .record("node.tx_total", &labels, t, node.tx_count as f64);
        }
        let (sent, delivered) = self.delivery_totals();
        tl.series.record("sim.readings_sent", &[], t, sent as f64);
        tl.series
            .record("sim.readings_delivered", &[], t, delivered as f64);
        tl.series.record(
            "sim.delivery_ratio",
            &[],
            t,
            if sent == 0 {
                1.0
            } else {
                delivered as f64 / sent as f64
            },
        );
        let stats = self.stats();
        tl.series
            .record("sim.collisions", &[], t, stats.collisions as f64);
        tl.series
            .record("sim.cca_busy", &[], t, stats.cca_busy as f64);
        tl.series
            .record("sim.retries", &[], t, stats.retries as f64);
        tl.series
            .record("sim.jam_bursts", &[], t, stats.jam_bursts as f64);
        tl.next_tick = at.plus_us(tl.interval_us);
        self.timeline = Some(tl);
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The run's aggregate counters so far, summed across shards.
    pub fn stats(&self) -> SimStats {
        let mut total = SimStats::default();
        for s in &self.shards {
            total.accumulate(&s.stats);
        }
        total
    }

    /// The committed event log: one deterministic line per MAC/PHY event,
    /// byte-identical across thread counts and IQ chunk sizes.
    pub fn event_log(&self) -> &[String] {
        &self.log
    }

    /// All nodes in global-handle order (index-aligned with the handles
    /// `add_*` returned).
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &SimNode> + '_ {
        self.node_map
            .iter()
            .map(move |&(s, l)| &self.shards[s].nodes[l])
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.node_map.len()
    }

    /// A node by handle.
    pub fn node(&self, idx: usize) -> &SimNode {
        let (s, l) = self.node_map[idx];
        &self.shards[s].nodes[l]
    }

    /// The XBee model behind a Zigbee node handle.
    pub fn zigbee(&self, idx: usize) -> Option<&XbeeNode> {
        match &self.node(idx).kind {
            NodeKind::Zigbee(st) => Some(&st.app),
            _ => None,
        }
    }

    /// Alerts an IDS monitor node has raised, stamped with cluster close
    /// time. Empty for non-IDS nodes.
    pub fn alerts(&self, idx: usize) -> &[(Instant, Alert)] {
        match &self.node(idx).kind {
            NodeKind::Ids { alerts, .. } => alerts,
            _ => &[],
        }
    }

    /// `(sent, delivered)` reading totals summed across shards. Frames
    /// cannot cross channels, so per-shard delivery accounting is exact.
    fn delivery_totals(&self) -> (u64, u64) {
        let mut sent = 0;
        let mut delivered = 0;
        for s in &self.shards {
            let (se, de) = s.delivery();
            sent += se;
            delivered += de;
        }
        (sent, delivered)
    }

    /// Summarises the run.
    pub fn report(&self) -> SimReport {
        let (sent, delivered) = self.delivery_totals();
        SimReport {
            readings_sent: sent,
            readings_delivered: delivered,
            delivery_ratio: if sent == 0 {
                1.0
            } else {
                delivered as f64 / sent as f64
            },
            stats: self.stats(),
            node_airtime_us: self
                .node_map
                .iter()
                .map(|&(s, l)| self.shards[s].nodes[l].airtime_us)
                .collect(),
            sim_time_us: self.now.0,
        }
    }
}
