//! One channel shard: a self-contained discrete-event engine for a single
//! 802.15.4 RF channel.
//!
//! Channels are physically independent spectra — a transmission on channel 14
//! deposits no energy on channel 15, CCA integrates only its own channel's
//! cluster, and jammers trigger only on same-channel keyups — so the
//! simulator partitions its event timeline by channel. Each [`Shard`] owns
//! its nodes (under shard-local indices), its event sub-queue, its busy-period
//! cluster state and its own modem/receiver instances, and advances with *no*
//! shared mutable state; [`crate::SpectrumSim`] is the facade that fans the
//! shards out over worker threads and merges their committed artifacts back
//! deterministically.
//!
//! Everything observable — log lines, metric labels, RNG streams, per-
//! receiver noise seeds — is keyed on each node's *global* id
//! ([`SimNode::id`]), never on its shard-local index, so the artifacts are
//! independent of how nodes happen to map onto shards.

use rand::Rng;
use wazabee::{WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::csma::{CsmaBackoff, CsmaStep, CCA_US, TURNAROUND_US};
use wazabee_dot154::mac::{Address, FrameType, MacFrame, BROADCAST_SHORT};
use wazabee_dot154::{Dot154Modem, Ppdu};
use wazabee_dsp::iq::Iq;
use wazabee_dsp::par::par_map_with;
use wazabee_dsp::resample::fractional_delay_planar_in_place;
use wazabee_dsp::{AwgnSource, IqBuf, Nco};
use wazabee_ids::Alert;
use wazabee_radio::{EventQueue, Instant};
use wazabee_zigbee::{NodeRole, XbeePayload};

use crate::config::SimConfig;
use crate::node::{NodeKind, SimNode};
use crate::sim::SimStats;
use crate::spectrum::{
    cca_power_planar, superpose_planar, ChannelAir, Transmission, TxKind, TxOrigin,
};

/// Events a shard schedules for itself. `node` fields are shard-local
/// indices.
#[derive(Debug)]
pub(crate) enum SimEvent {
    /// A node's periodic application timer (sensor reading, flood frame).
    AppTimer { node: usize },
    /// A Zigbee node's backoff expired: perform the CCA now.
    CsmaCca { node: usize },
    /// Key up the head of a node's immediate (CSMA-bypassing) queue.
    SendImmediate { node: usize },
    /// A WazaBee injector's scheduled frame.
    Inject { node: usize, frame: MacFrame },
    /// A reactive jammer's burst keyup.
    JamBurst { node: usize },
    /// A transmission ends on the shard's channel.
    TxEnd,
    /// The ACK wait for `seq` expires.
    AckTimeout { node: usize, seq: u8 },
}

/// What one receiver got out of a closed cluster.
enum Heard {
    /// Decoded MAC frames plus the count of failed decode attempts.
    Frames(Vec<MacFrame>, u64),
    /// The raw superposed window (IDS monitors).
    Raw(Vec<Iq>),
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn alert_kind(alert: &Alert) -> &'static str {
    match alert {
        Alert::CrossProtocolFrame { .. } => "cross-protocol",
        Alert::UnexpectedDot154 { .. } => "unexpected-dot154",
        Alert::TrafficAnomaly { .. } => "traffic-anomaly",
    }
}

/// The per-channel discrete-event engine. See the module docs.
#[derive(Debug)]
pub(crate) struct Shard {
    cfg: SimConfig,
    /// 802.15.4 channel number (11–26) this shard simulates.
    channel_number: u8,
    pub(crate) now: Instant,
    pub(crate) queue: EventQueue<SimEvent>,
    pub(crate) nodes: Vec<SimNode>,
    /// Busy-period state of the shard's single channel.
    air: ChannelAir,
    /// The legitimate nodes' O-QPSK modulator.
    modem: Dot154Modem,
    /// The attackers' diverted-BLE transmitter.
    btx: WazaBeeTx<BleModem>,
    /// The shared streaming demodulation primitive (stateless per capture).
    rx: WazaBeeRx<BleModem>,
    /// Shard-local cluster counter. Single-channel runs therefore see the
    /// same cluster-id sequence (and per-receiver noise seeds) as the old
    /// unsharded engine.
    cluster_counter: u64,
    pub(crate) stats: SimStats,
    /// Committed log entries since the facade last drained them, with their
    /// timestamps for the cross-shard merge.
    log: Vec<(u64, String)>,
    /// `(source short address, value)` of every reading handed to the MAC by
    /// this shard's sensors.
    pub(crate) readings_sent: Vec<(u16, u16)>,
    /// After this instant application timers stop generating traffic.
    pub(crate) traffic_deadline: Option<Instant>,
    /// Reused CCA accumulation window (no allocation per measurement).
    cca_scratch: IqBuf,
    /// Reused per-member gain staging for CCA measurements.
    gain_scratch: Vec<f64>,
    /// Worker threads for fanning out per-receiver cluster decodes. The
    /// facade sets this to its full budget when only one shard exists and to
    /// 1 otherwise (the budget is then spent across shards).
    pub(crate) decode_threads: usize,
}

impl Shard {
    pub(crate) fn new(cfg: SimConfig, channel_number: u8) -> Self {
        let sps = cfg.samples_per_chip;
        Shard {
            cfg,
            channel_number,
            now: Instant(0),
            queue: EventQueue::new(),
            nodes: Vec::new(),
            air: ChannelAir::default(),
            modem: Dot154Modem::new(sps),
            btx: WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps))
                .expect("LE 2M runs at the required 2 Msym/s"),
            rx: WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps))
                .expect("LE 2M runs at the required 2 Msym/s"),
            cluster_counter: 0,
            stats: SimStats::default(),
            log: Vec::new(),
            readings_sent: Vec::new(),
            traffic_deadline: None,
            cca_scratch: IqBuf::new(),
            gain_scratch: Vec::new(),
            decode_threads: 1,
        }
    }

    fn spu(&self) -> u64 {
        self.cfg.samples_per_us()
    }

    /// Registers a node (already carrying its global id), returning its
    /// shard-local index.
    pub(crate) fn push_node(&mut self, node: SimNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Drains the log entries committed since the last drain.
    pub(crate) fn take_log(&mut self) -> Vec<(u64, String)> {
        std::mem::take(&mut self.log)
    }

    /// `(readings sent, readings delivered)` for this shard: a reading
    /// counts as delivered when some coordinator on the channel recorded a
    /// matching `(source, value)` pair. One linear pass over coordinator
    /// displays plus one set probe per sent reading — not the quadratic
    /// scan the unsharded engine ran.
    pub(crate) fn delivery(&self) -> (u64, u64) {
        let sent = self.readings_sent.len() as u64;
        if sent == 0 {
            return (0, 0);
        }
        let mut displayed = std::collections::HashSet::new();
        for n in &self.nodes {
            if let NodeKind::Zigbee(st) = &n.kind {
                if st.app.role() == NodeRole::Coordinator {
                    for r in st.app.readings() {
                        displayed.insert((r.reported_by, r.value));
                    }
                }
            }
        }
        let delivered = self
            .readings_sent
            .iter()
            .filter(|pair| displayed.contains(*pair))
            .count() as u64;
        (sent, delivered)
    }

    fn log_push(&mut self, line: String) {
        self.log.push((self.now.0, line));
    }

    /// Runs this shard's event loop until `deadline` (inclusive). Safe to
    /// call from a worker thread: nothing here touches state outside the
    /// shard (telemetry counters/stages are thread-safe process-globals).
    pub(crate) fn advance_until(&mut self, deadline: Instant) {
        while let Some(when) = self.queue.peek_time() {
            if when > deadline {
                break;
            }
            let (when, event) = self.queue.pop().expect("peeked event exists");
            self.now = when;
            self.dispatch(event);
        }
        self.now = self.now.max(deadline);
    }

    fn dispatch(&mut self, event: SimEvent) {
        match event {
            SimEvent::AppTimer { node } => self.on_app_timer(node),
            SimEvent::CsmaCca { node } => self.on_csma_cca(node),
            SimEvent::SendImmediate { node } => self.on_send_immediate(node),
            SimEvent::Inject { node, frame } => {
                self.log_push(format!(
                    "t={} inject node={} seq={}",
                    self.now.0, self.nodes[node].id, frame.sequence
                ));
                self.transmit_wazabee(node, &frame);
            }
            SimEvent::JamBurst { node } => self.on_jam_burst(node),
            SimEvent::TxEnd => self.on_tx_end(),
            SimEvent::AckTimeout { node, seq } => self.on_ack_timeout(node, seq),
        }
    }

    // ------------------------------------------------------------------
    // Application layer
    // ------------------------------------------------------------------

    fn on_app_timer(&mut self, idx: usize) {
        let now = self.now;
        if self.traffic_deadline.is_some_and(|d| now > d) {
            return;
        }
        let (frames, interval) = match &mut self.nodes[idx].kind {
            NodeKind::Zigbee(st) => (st.app.on_timer(now), st.app.timer_interval_ms()),
            NodeKind::Flooder { .. } => {
                self.flood(idx);
                return;
            }
            _ => return,
        };
        for frame in frames {
            if frame.frame_type == FrameType::Data {
                if let Address::Short(src) = frame.src {
                    if let Some(v) =
                        XbeePayload::from_bytes(&frame.payload).and_then(|p| p.as_reading())
                    {
                        self.readings_sent.push((src, v));
                    }
                }
            }
            if let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind {
                st.pending.push_back(frame);
            }
        }
        if let Some(ms) = interval {
            self.queue
                .schedule(now.plus_ms(ms), SimEvent::AppTimer { node: idx });
        }
        self.kick(idx);
    }

    fn flood(&mut self, idx: usize) {
        let (config, seq) = match &mut self.nodes[idx].kind {
            NodeKind::Flooder { config, seq } => {
                *seq = seq.wrapping_add(1);
                (*config, *seq)
            }
            _ => return,
        };
        // An opaque (non-XBee) payload: the victim ACKs the frame but records
        // nothing, so the flood burns its airtime without faking readings.
        let frame = MacFrame::data(config.pan, config.src, config.victim, seq, vec![0xF1, 0x00]);
        self.log_push(format!(
            "t={} flood node={} seq={}",
            self.now.0, self.nodes[idx].id, seq
        ));
        self.transmit_wazabee(idx, &frame);
        self.queue.schedule(
            self.now.plus_us(config.interval_us),
            SimEvent::AppTimer { node: idx },
        );
    }

    // ------------------------------------------------------------------
    // CSMA/CA MAC for Zigbee nodes
    // ------------------------------------------------------------------

    /// Starts a CSMA attempt for the head of a Zigbee node's queue when the
    /// node is idle; no-op otherwise.
    fn kick(&mut self, idx: usize) {
        let csma_cfg = self.cfg.csma;
        let now = self.now;
        let node = &mut self.nodes[idx];
        let NodeKind::Zigbee(st) = &mut node.kind else {
            return;
        };
        if st.transmitting
            || st.csma.is_some()
            || st.awaiting_ack.is_some()
            || st.pending.is_empty()
        {
            return;
        }
        let csma = CsmaBackoff::new(csma_cfg);
        let delay = csma.backoff(node.rng.gen());
        st.csma = Some(csma);
        self.queue
            .schedule(now.plus_us(delay), SimEvent::CsmaCca { node: idx });
    }

    /// Measures CCA energy over the live cluster through the same planar
    /// `f32` superposition kernel the demodulators decode — and with zero
    /// allocation: the accumulation window and the per-member gain staging
    /// are shard-owned scratch.
    fn cca_busy(&mut self) -> bool {
        if self.air.active == 0 {
            return false;
        }
        let spu = self.cfg.samples_per_us();
        self.gain_scratch.clear();
        self.gain_scratch
            .extend(self.air.cluster.iter().map(|t| self.nodes[t.source].gain));
        cca_power_planar(
            &self.air.cluster,
            &self.gain_scratch,
            self.now,
            CCA_US,
            spu,
            &mut self.cca_scratch,
        ) >= self.cfg.cca_threshold
    }

    fn on_csma_cca(&mut self, idx: usize) {
        let (armed, transmitting) = match &self.nodes[idx].kind {
            NodeKind::Zigbee(st) => (st.csma.is_some(), st.transmitting),
            _ => return,
        };
        if !armed {
            return;
        }
        if !transmitting && !self.cca_busy() {
            self.start_zigbee_frame(idx);
            return;
        }
        self.stats.cca_busy += 1;
        wazabee_telemetry::counter!("sim.cca_busy").inc();
        self.log_push(format!(
            "t={} cca-busy node={}",
            self.now.0, self.nodes[idx].id
        ));
        let step = {
            let node = &mut self.nodes[idx];
            let NodeKind::Zigbee(st) = &mut node.kind else {
                return;
            };
            let draw = node.rng.gen();
            st.csma.as_mut().map(|c| c.channel_busy(draw))
        };
        match step {
            Some(CsmaStep::Backoff(delay)) => {
                self.queue
                    .schedule(self.now.plus_us(delay), SimEvent::CsmaCca { node: idx });
            }
            Some(CsmaStep::Failure) => {
                self.stats.csma_failures += 1;
                self.log_push(format!(
                    "t={} csma-failure node={}",
                    self.now.0, self.nodes[idx].id
                ));
                self.attempt_failed(idx, "channel-access");
            }
            None => {}
        }
    }

    fn start_zigbee_frame(&mut self, idx: usize) {
        let prepared = {
            let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind else {
                return;
            };
            let Some(head) = st.pending.front() else {
                st.csma = None;
                return;
            };
            match Ppdu::new(head.to_psdu()) {
                Ok(ppdu) => {
                    st.transmitting = true;
                    Some((ppdu, head.sequence, head.ack_request))
                }
                Err(_) => None,
            }
        };
        match prepared {
            Some((ppdu, seq, ack_request)) => {
                let samples = {
                    let _s = wazabee_telemetry::stage!("sim.modulate");
                    self.modem.transmit(&ppdu)
                };
                self.begin_transmission(
                    idx,
                    samples,
                    TxKind::Frame,
                    TxOrigin::Head,
                    Some(seq),
                    ack_request,
                );
            }
            None => {
                // An unencodable (oversize) head frame: drop it rather than
                // wedge the queue behind it forever.
                if let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind {
                    st.pending.pop_front();
                    st.csma = None;
                }
                self.log_push(format!(
                    "t={} drop-unencodable node={}",
                    self.now.0, self.nodes[idx].id
                ));
                self.kick(idx);
            }
        }
    }

    /// Head-of-queue success: frame acknowledged, or a no-ACK frame sent.
    fn complete_head(&mut self, idx: usize, why: &str) {
        let seq = {
            let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind else {
                return;
            };
            st.csma = None;
            st.awaiting_ack = None;
            st.retries = 0;
            st.pending.pop_front().map(|f| f.sequence)
        };
        if let Some(seq) = seq {
            self.log_push(format!(
                "t={} complete node={} seq={} why={}",
                self.now.0, self.nodes[idx].id, seq, why
            ));
        }
        self.kick(idx);
    }

    /// One transmission attempt failed (missed ACK or channel access):
    /// retry with a fresh CSMA attempt, or abandon past the retry budget.
    fn attempt_failed(&mut self, idx: usize, why: &str) {
        let max_retries = self.cfg.csma.max_frame_retries;
        let (abandoned, seq) = {
            let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind else {
                return;
            };
            st.csma = None;
            st.awaiting_ack = None;
            st.retries += 1;
            if st.retries > max_retries {
                st.retries = 0;
                (true, st.pending.pop_front().map(|f| f.sequence))
            } else {
                (false, st.pending.front().map(|f| f.sequence))
            }
        };
        if abandoned {
            self.stats.frames_abandoned += 1;
            self.log_push(format!(
                "t={} abandon node={} seq={:?} why={}",
                self.now.0, self.nodes[idx].id, seq, why
            ));
        } else {
            self.stats.retries += 1;
            wazabee_telemetry::counter!("sim.retries").inc();
            self.log_push(format!(
                "t={} retry node={} seq={:?} why={}",
                self.now.0, self.nodes[idx].id, seq, why
            ));
        }
        self.kick(idx);
    }

    fn on_ack_timeout(&mut self, idx: usize, seq: u8) {
        let pending = matches!(
            &self.nodes[idx].kind,
            NodeKind::Zigbee(st) if st.awaiting_ack == Some(seq)
        );
        if pending {
            self.log_push(format!(
                "t={} ack-timeout node={} seq={}",
                self.now.0, self.nodes[idx].id, seq
            ));
            self.attempt_failed(idx, "no-ack");
        }
    }

    fn on_send_immediate(&mut self, idx: usize) {
        enum Radio {
            Oqpsk,
            Diverted,
        }
        let prepared = match &mut self.nodes[idx].kind {
            NodeKind::Zigbee(st) => match st.immediate.pop_front() {
                Some(frame) if !st.transmitting => {
                    st.transmitting = true;
                    Some((frame, Radio::Oqpsk))
                }
                Some(_) => {
                    // Half-duplex: the radio is keyed, the ACK is lost.
                    self.log_push(format!(
                        "t={} ack-suppressed node={}",
                        self.now.0, self.nodes[idx].id
                    ));
                    None
                }
                None => None,
            },
            NodeKind::Spoofer { immediate } => immediate.pop_front().map(|f| (f, Radio::Diverted)),
            _ => None,
        };
        let Some((frame, radio)) = prepared else {
            return;
        };
        match radio {
            Radio::Oqpsk => {
                let Ok(ppdu) = Ppdu::new(frame.to_psdu()) else {
                    return;
                };
                let samples = {
                    let _s = wazabee_telemetry::stage!("sim.modulate");
                    self.modem.transmit(&ppdu)
                };
                self.begin_transmission(
                    idx,
                    samples,
                    TxKind::Frame,
                    TxOrigin::Immediate,
                    Some(frame.sequence),
                    false,
                );
            }
            Radio::Diverted => {
                self.stats.acks_spoofed += 1;
                wazabee_telemetry::counter!("sim.acks_spoofed").inc();
                self.log_push(format!(
                    "t={} spoofed-ack node={} seq={}",
                    self.now.0, self.nodes[idx].id, frame.sequence
                ));
                self.transmit_wazabee(idx, &frame);
            }
        }
    }

    // ------------------------------------------------------------------
    // The air
    // ------------------------------------------------------------------

    fn transmit_wazabee(&mut self, idx: usize, frame: &MacFrame) {
        let Ok(ppdu) = Ppdu::new(frame.to_psdu()) else {
            return;
        };
        // Simulation ground truth for the health plane: a diverted-BLE
        // injector keyed up on the ether. Collisions alone stopped being an
        // attack signal once 1024-node cells made legitimate CSMA collisions
        // routine.
        wazabee_telemetry::counter!("sim.injected").inc();
        let samples = {
            let _s = wazabee_telemetry::stage!("sim.modulate");
            self.btx.transmit(&ppdu)
        };
        self.begin_transmission(
            idx,
            samples,
            TxKind::Frame,
            TxOrigin::Attacker,
            Some(frame.sequence),
            frame.ack_request,
        );
    }

    fn begin_transmission(
        &mut self,
        source: usize,
        samples: Vec<Iq>,
        kind: TxKind,
        origin: TxOrigin,
        seq: Option<u8>,
        ack_request: bool,
    ) {
        let spu = self.spu();
        let duration_us = (samples.len() as u64).div_ceil(spu).max(1);
        let start = self.now;
        let end = start.plus_us(duration_us);
        let source_id = self.nodes[source].id;
        let _span = wazabee_telemetry::span!(
            "sim.tx",
            node = source_id,
            chan = self.channel_number,
            dur_us = duration_us
        );
        self.nodes[source].airtime_us += duration_us;
        self.nodes[source].tx_count += 1;
        {
            let node = source_id.to_string();
            let channel = self.channel_number.to_string();
            wazabee_telemetry::labeled_counter!("sim.tx").inc(&[
                ("node", &node),
                ("channel", &channel),
                ("kind", self.nodes[source].kind_name()),
            ]);
        }
        self.log_push(format!(
            "t={} keyup node={} kind={} seq={:?} dur={}",
            start.0,
            source_id,
            self.nodes[source].kind_name(),
            seq,
            duration_us
        ));
        if self.air.cluster.is_empty() {
            self.air.cluster_start = start;
        }
        self.air.cluster.push(Transmission {
            source,
            start,
            end,
            samples,
            kind,
            origin,
            seq,
            ack_request,
            finalized: false,
        });
        self.air.active += 1;
        self.queue.schedule(end, SimEvent::TxEnd);
        if kind == TxKind::Frame {
            self.trigger_jammers(source);
        }
    }

    fn trigger_jammers(&mut self, source: usize) {
        let now = self.now;
        for j in 0..self.nodes.len() {
            if j == source {
                continue;
            }
            let node = &mut self.nodes[j];
            let NodeKind::Jammer { config, jamming } = &mut node.kind else {
                continue;
            };
            if *jamming {
                continue;
            }
            let draw: u64 = node.rng.gen();
            if ((draw % 1_000) as f64) / 1_000.0 >= config.trigger_probability {
                continue;
            }
            *jamming = true;
            let when = now.plus_us(config.reaction_us);
            self.queue.schedule(when, SimEvent::JamBurst { node: j });
        }
    }

    fn on_jam_burst(&mut self, idx: usize) {
        let (burst_us, power) = match &self.nodes[idx].kind {
            NodeKind::Jammer { config, .. } => (config.burst_us, config.power),
            _ => return,
        };
        let len = (burst_us * self.spu()) as usize;
        let mut samples = vec![Iq::ZERO; len];
        let seed: u64 = self.nodes[idx].rng.gen();
        AwgnSource::new(seed, (power / 2.0).sqrt()).add_to(&mut samples);
        self.stats.jam_bursts += 1;
        self.begin_transmission(idx, samples, TxKind::Jam, TxOrigin::Attacker, None, false);
    }

    fn on_tx_end(&mut self) {
        let now = self.now;
        let mut finished: Vec<(usize, TxOrigin, Option<u8>, bool)> = Vec::new();
        for t in self.air.cluster.iter_mut() {
            if !t.finalized && t.end <= now {
                t.finalized = true;
                self.air.active -= 1;
                finished.push((t.source, t.origin, t.seq, t.ack_request));
            }
        }
        for (src, origin, seq, ack_request) in finished {
            let mut complete = false;
            let mut await_seq = None;
            match &mut self.nodes[src].kind {
                NodeKind::Zigbee(st) => {
                    st.transmitting = false;
                    if origin == TxOrigin::Head {
                        if ack_request {
                            let s = seq.unwrap_or(0);
                            st.awaiting_ack = Some(s);
                            await_seq = Some(s);
                        } else {
                            complete = true;
                        }
                    }
                }
                NodeKind::Jammer { jamming, .. } => *jamming = false,
                _ => {}
            }
            if let Some(s) = await_seq {
                self.queue.schedule(
                    now.plus_us(self.cfg.ack_wait_us),
                    SimEvent::AckTimeout { node: src, seq: s },
                );
            }
            if complete {
                self.complete_head(src, "sent");
            }
        }
        if self.air.active == 0 && !self.air.cluster.is_empty() {
            self.close_cluster();
        }
    }

    // ------------------------------------------------------------------
    // Cluster close: superpose, demodulate, deliver
    // ------------------------------------------------------------------

    /// Feeds a receiver window through the streaming receiver in
    /// `iq_chunk`-sized pushes, returning recovered frames and the count of
    /// committed failed attempts.
    fn decode_buffer(&self, buf: &IqBuf) -> (Vec<MacFrame>, u64) {
        let _s = wazabee_telemetry::stage!("sim.demod");
        let mut stream = self.rx.stream();
        let mut results = Vec::new();
        let chunk = self.cfg.iq_chunk.max(1);
        let mut from = 0;
        while from < buf.len() {
            let to = (from + chunk).min(buf.len());
            results.extend(stream.push_planar(buf.slice(from, to)));
            from = to;
        }
        results.extend(stream.finish());
        let mut frames = Vec::new();
        let mut failures = 0u64;
        for r in results {
            match r {
                Ok(p) if p.fcs_ok() => match MacFrame::from_psdu(&p.psdu) {
                    Some(f) => frames.push(f),
                    None => failures += 1,
                },
                _ => failures += 1,
            }
        }
        (frames, failures)
    }

    /// Superposes a closed cluster into what receiver `idx` (shard-local)
    /// heard, applies the per-receiver impairments, and decodes (or, for IDS
    /// monitors, widens the raw window). Immutable — safe to fan out over
    /// worker threads, one receiver each.
    fn receiver_hears(
        &self,
        idx: usize,
        cluster: &[Transmission],
        gains: &[f64],
        start: Instant,
        end: Instant,
        cluster_id: u64,
    ) -> Heard {
        let node = &self.nodes[idx];
        let is_ids = matches!(node.kind, NodeKind::Ids { .. });
        // Parent span for this receiver's whole listen window: the
        // per-attempt `rx.decode` spans opened inside the streaming
        // receiver nest under it, so one cluster's causal tree reads
        // sim.rx → rx.decode → stream stages in the Perfetto view.
        let _span = wazabee_telemetry::span!(
            "sim.rx",
            node = node.id,
            chan = self.channel_number,
            cluster = cluster_id
        );
        let mut buf = {
            let _s = wazabee_telemetry::stage!("sim.superpose");
            superpose_planar(cluster, gains, start, end, self.spu())
        };
        if self.cfg.cfo_hz != 0.0 {
            Nco::new(self.cfg.cfo_hz, self.cfg.sample_rate()).mix_planar_in_place(&mut buf);
        }
        if self.cfg.timing_offset != 0.0 {
            fractional_delay_planar_in_place(&mut buf, self.cfg.timing_offset);
        }
        if let Some(snr) = self.cfg.snr_db {
            let sig = gains.iter().fold(0.0f64, |m, &g| m.max(g * g)).max(1e-12);
            let seed = splitmix64(
                self.cfg.seed
                    ^ cluster_id.wrapping_mul(0xA24B_AED4_963E_E407)
                    ^ (node.id as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
            );
            AwgnSource::from_snr_db(seed, snr, sig).add_to_planar(&mut buf);
        }
        if is_ids {
            // The IDS monitors run interleaved spectral analysis; widen
            // only for them — decoding receivers stay planar end to end.
            Heard::Raw(buf.to_interleaved())
        } else {
            let (frames, failures) = self.decode_buffer(&buf);
            Heard::Frames(frames, failures)
        }
    }

    fn close_cluster(&mut self) {
        let air = std::mem::take(&mut self.air);
        let cluster = air.cluster;
        if cluster.is_empty() {
            return;
        }
        let cluster_id = self.cluster_counter;
        self.cluster_counter += 1;
        let start = air.cluster_start;
        let end = self.now;
        let gains: Vec<f64> = cluster.iter().map(|t| self.nodes[t.source].gain).collect();

        // A demodulation-level collision: two or more *frames* overlapped.
        let frames_in_cluster: Vec<&Transmission> =
            cluster.iter().filter(|t| t.kind == TxKind::Frame).collect();
        let collided = frames_in_cluster.iter().enumerate().any(|(i, a)| {
            frames_in_cluster[i + 1..]
                .iter()
                .any(|b| a.start < b.end && b.start < a.end)
        });
        if collided {
            self.stats.collisions += 1;
            wazabee_telemetry::counter!("sim.collisions").inc();
            self.log_push(format!(
                "t={} collision ch={} cluster={} frames={}",
                end.0,
                self.channel_number,
                cluster_id,
                frames_in_cluster.len()
            ));
        }

        // Phase 1 (immutable): superpose and demodulate per receiver, in
        // ascending local index order (== ascending global id order).
        let receivers: Vec<usize> = (0..self.nodes.len())
            .filter(|&idx| {
                if cluster.iter().any(|t| t.source == idx) {
                    return false;
                }
                matches!(
                    self.nodes[idx].kind,
                    NodeKind::Zigbee(_) | NodeKind::Spoofer { .. } | NodeKind::Ids { .. }
                )
            })
            .collect();
        let coherent = self.cfg.snr_db.is_none();
        let deliveries: Vec<(usize, Heard)> = if coherent {
            // With no per-receiver noise every listener hears bit-identical
            // samples, so one decode is shared — an exact, not approximate,
            // fast path (and inherently sequential).
            let mut shared: Option<(Vec<MacFrame>, u64)> = None;
            let mut out = Vec::with_capacity(receivers.len());
            for idx in receivers {
                let decodes = matches!(
                    self.nodes[idx].kind,
                    NodeKind::Zigbee(_) | NodeKind::Spoofer { .. }
                );
                if decodes {
                    if let Some((frames, fails)) = &shared {
                        out.push((idx, Heard::Frames(frames.clone(), *fails)));
                        continue;
                    }
                }
                let heard = self.receiver_hears(idx, &cluster, &gains, start, end, cluster_id);
                if decodes {
                    if let Heard::Frames(frames, fails) = &heard {
                        shared = Some((frames.clone(), *fails));
                    }
                }
                out.push((idx, heard));
            }
            out
        } else {
            // Noisy path: every receiver's superpose+impair+decode is
            // independent (noise is seeded per (cluster, receiver)), so fan
            // the expensive StreamingRx demodulations out over par_map and
            // merge back in receiver order — byte-identical at any width.
            par_map_with(Some(self.decode_threads.max(1)), receivers, |idx| {
                (
                    idx,
                    self.receiver_hears(idx, &cluster, &gains, start, end, cluster_id),
                )
            })
        };

        // Phase 2 (mutable): hand each receiver what it heard.
        for (idx, heard) in deliveries {
            match heard {
                Heard::Frames(frames, failures) => {
                    self.stats.frames_decoded += frames.len() as u64;
                    self.stats.decode_failures += failures;
                    {
                        let node = self.nodes[idx].id.to_string();
                        wazabee_telemetry::labeled_counter!("sim.rx.frames")
                            .add(&[("node", &node)], frames.len() as u64);
                    }
                    match &self.nodes[idx].kind {
                        NodeKind::Zigbee(_) => self.zigbee_rx(idx, frames),
                        NodeKind::Spoofer { .. } => self.spoofer_rx(idx, frames),
                        _ => {}
                    }
                }
                Heard::Raw(buf) => self.ids_rx(idx, &buf),
            }
        }
    }

    fn zigbee_rx(&mut self, idx: usize, frames: Vec<MacFrame>) {
        let now = self.now;
        for frame in frames {
            self.log_push(format!(
                "t={} rx node={} type={:?} seq={}",
                now.0, self.nodes[idx].id, frame.frame_type, frame.sequence
            ));
            if frame.frame_type == FrameType::Ack {
                let matched = matches!(
                    &self.nodes[idx].kind,
                    NodeKind::Zigbee(st) if st.awaiting_ack == Some(frame.sequence)
                );
                if matched {
                    self.complete_head(idx, "acked");
                }
                continue;
            }
            let replies = match &mut self.nodes[idx].kind {
                NodeKind::Zigbee(st) => st.app.on_receive(&frame, now),
                _ => Vec::new(),
            };
            for reply in replies {
                if reply.frame_type == FrameType::Ack {
                    if let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind {
                        st.immediate.push_back(reply);
                    }
                    self.queue.schedule(
                        now.plus_us(TURNAROUND_US),
                        SimEvent::SendImmediate { node: idx },
                    );
                } else if let NodeKind::Zigbee(st) = &mut self.nodes[idx].kind {
                    st.pending.push_back(reply);
                }
            }
        }
        self.kick(idx);
    }

    fn spoofer_rx(&mut self, idx: usize, frames: Vec<MacFrame>) {
        let now = self.now;
        for frame in frames {
            let spoofable = frame.frame_type == FrameType::Data
                && frame.ack_request
                && matches!(frame.dest, Address::Short(d) if d != BROADCAST_SHORT);
            if !spoofable {
                continue;
            }
            if let NodeKind::Spoofer { immediate } = &mut self.nodes[idx].kind {
                immediate.push_back(MacFrame::ack(frame.sequence));
            }
            self.queue.schedule(
                now.plus_us(self.cfg.spoof_delay_us),
                SimEvent::SendImmediate { node: idx },
            );
        }
    }

    fn ids_rx(&mut self, idx: usize, buf: &[Iq]) {
        let now = self.now;
        let new_alerts = match &mut self.nodes[idx].kind {
            NodeKind::Ids { monitor, .. } => monitor.observe(buf),
            _ => return,
        };
        for alert in &new_alerts {
            self.log_push(format!(
                "t={} alert node={} kind={}",
                now.0,
                self.nodes[idx].id,
                alert_kind(alert)
            ));
        }
        if let NodeKind::Ids { alerts, .. } = &mut self.nodes[idx].kind {
            alerts.extend(new_alerts.into_iter().map(|a| (now, a)));
        }
    }
}
