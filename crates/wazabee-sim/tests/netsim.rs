//! End-to-end acceptance tests for the shared-spectrum simulator: the
//! ISSUE-5 criteria — demodulation-level collisions, capture effect,
//! CSMA/CA recovery, attacker nodes, and IDS flagging — all through the
//! real IQ path.

use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::Dot154Channel;
use wazabee_ids::{Alert, MonitorConfig};
use wazabee_radio::Instant;
use wazabee_sim::{FlooderConfig, JammerConfig, SimConfig, SpectrumSim};
use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode, XbeePayload};

const PAN: u16 = 0x1234;
const COORD: u16 = 0x0042;

fn channel() -> Dot154Channel {
    Dot154Channel::new(14).unwrap()
}

fn coordinator() -> XbeeNode {
    XbeeNode::new(
        NodeConfig {
            pan: PAN,
            short_addr: COORD,
            channel: channel(),
        },
        NodeRole::Coordinator,
    )
}

fn sensor(addr: u16, interval_ms: u64) -> XbeeNode {
    XbeeNode::new(
        NodeConfig {
            pan: PAN,
            short_addr: addr,
            channel: channel(),
        },
        NodeRole::Sensor { interval_ms },
    )
}

#[test]
fn ideal_single_sensor_delivers_everything() {
    let mut sim = SpectrumSim::new(SimConfig::ideal());
    let coord = sim.add_zigbee(coordinator());
    sim.add_zigbee(sensor(0x0063, 40));
    sim.run_until(Instant(0).plus_ms(210));

    let report = sim.report();
    assert_eq!(report.readings_sent, 5);
    assert_eq!(report.readings_delivered, 5);
    assert_eq!(report.delivery_ratio, 1.0);
    assert_eq!(report.stats.collisions, 0);
    assert_eq!(report.stats.frames_abandoned, 0);
    // The data/ACK handshake ran over the air: both sides keyed up.
    assert!(sim.node(coord).airtime_us() > 0, "coordinator never ACKed");
}

#[test]
fn overlapping_injections_collide_at_demodulation() {
    // Two carrier-sense-free injectors keying up at the same instant at
    // equal gain: the superposed waveform must destroy at least one frame.
    let mut sim = SpectrumSim::new(SimConfig::ideal());
    let coord = sim.add_zigbee(coordinator());
    let a = sim.add_wazabee_injector(channel(), 1.0);
    let b = sim.add_wazabee_injector(channel(), 1.0);
    let frame_a = MacFrame::data(PAN, 0x0070, COORD, 1, XbeePayload::reading(1111).to_bytes());
    let frame_b = MacFrame::data(PAN, 0x0071, COORD, 1, XbeePayload::reading(2222).to_bytes());
    sim.inject_at(a, Instant(1_000), frame_a);
    sim.inject_at(b, Instant(1_000), frame_b);
    sim.run_until(Instant(0).plus_ms(20));

    assert_eq!(
        sim.stats().collisions,
        1,
        "overlap must be seen as a collision"
    );
    let readings = sim.zigbee(coord).unwrap().readings();
    assert!(
        readings.len() <= 1,
        "equal-power overlap delivered both frames: {readings:?}"
    );
}

#[test]
fn capture_effect_recovers_the_stronger_frame() {
    // Same overlap, but one emitter 12 dB up: the strong frame should
    // survive the weak one's interference — the capture effect, emerging
    // from the discriminator math rather than a model parameter.
    let mut sim = SpectrumSim::new(SimConfig::ideal());
    let coord = sim.add_zigbee(coordinator());
    let strong = sim.add_wazabee_injector(channel(), 1.0);
    let weak = sim.add_wazabee_injector(channel(), 0.25);
    let frame_s = MacFrame::data(PAN, 0x0070, COORD, 1, XbeePayload::reading(1111).to_bytes());
    let frame_w = MacFrame::data(PAN, 0x0071, COORD, 1, XbeePayload::reading(2222).to_bytes());
    sim.inject_at(strong, Instant(1_000), frame_s);
    sim.inject_at(weak, Instant(1_000), frame_w);
    sim.run_until(Instant(0).plus_ms(20));

    assert_eq!(sim.stats().collisions, 1);
    let readings = sim.zigbee(coord).unwrap().readings();
    assert_eq!(readings.len(), 1, "capture margin should save one frame");
    assert_eq!(readings[0].value, 1111);
    assert_eq!(readings[0].reported_by, 0x0070);
}

#[test]
fn csma_resolves_contention_on_retry() {
    // Two sensors with the same period fire their timers at the same
    // instant, every round. CSMA/CA (randomized backoff, CCA against the
    // live spectrum, ACK-triggered retries) must still deliver everything.
    let mut sim = SpectrumSim::new(SimConfig::ideal());
    sim.add_zigbee(coordinator());
    sim.add_zigbee(sensor(0x0063, 50));
    sim.add_zigbee(sensor(0x0064, 50));
    sim.run_until(Instant(0).plus_ms(420));

    let report = sim.report();
    assert_eq!(report.readings_sent, 16);
    assert_eq!(
        report.delivery_ratio,
        1.0,
        "contention must resolve: {:?}\nlog tail: {:#?}",
        report.stats,
        sim.event_log().iter().rev().take(12).collect::<Vec<_>>()
    );
    let s = &report.stats;
    assert!(
        s.cca_busy + s.retries + s.collisions > 0,
        "same-instant timers should have contended at least once: {s:?}"
    );
}

#[test]
fn four_node_network_meets_the_delivery_floor() {
    // Acceptance: a 4-node network that delivers 100% under the ideal
    // configuration stays ≥ 95% with office-grade noise, CFO and timing
    // offset on every receiver.
    let run = |cfg: SimConfig| {
        let mut sim = SpectrumSim::new(cfg);
        sim.add_zigbee(coordinator());
        sim.add_zigbee(sensor(0x0063, 47));
        sim.add_zigbee(sensor(0x0064, 53));
        sim.add_zigbee(sensor(0x0065, 59));
        sim.run_until(Instant(0).plus_ms(300));
        sim.report()
    };

    let ideal = run(SimConfig::ideal());
    assert!(ideal.readings_sent >= 15);
    assert_eq!(
        ideal.delivery_ratio, 1.0,
        "ideal run lost traffic: {ideal:?}"
    );

    let office = run(SimConfig::office());
    assert!(
        office.delivery_ratio >= 0.95,
        "office-grade PHY fell below the floor: {office:?}"
    );
}

#[test]
fn wazabee_injection_is_accepted_and_flagged() {
    // Acceptance: the attacker's GFSK-modulated frame crosses the full IQ
    // path into the victim's application layer, and the IDS monitor node
    // flags the same emission.
    let mut sim = SpectrumSim::new(SimConfig::ideal());
    let coord = sim.add_zigbee(coordinator());
    sim.add_zigbee(sensor(0x0063, 40));
    let attacker = sim.add_wazabee_injector(channel(), 1.0);
    let ids = sim.add_ids_monitor(channel(), MonitorConfig::default());
    let forged = MacFrame::data(
        PAN,
        0x0063,
        COORD,
        200,
        XbeePayload::reading(9999).to_bytes(),
    );
    let forged_psdu = forged.to_psdu();
    sim.inject_at(attacker, Instant(21_000), forged);
    sim.run_until(Instant(0).plus_ms(120));

    let victim = sim.zigbee(coord).unwrap();
    assert!(
        victim.readings().iter().any(|r| r.value == 9999),
        "victim never accepted the forged reading: {:?}",
        victim.readings()
    );
    let alerts = sim.alerts(ids);
    assert!(
        alerts.iter().any(|(_, a)| matches!(
            a,
            Alert::UnexpectedDot154 { psdu, .. } if *psdu == forged_psdu
        )),
        "IDS never flagged the injected PSDU: {alerts:?}"
    );
}

#[test]
fn ack_spoofer_masks_delivery_failure() {
    // A sensor reports to a coordinator address that does not exist. Alone,
    // every frame exhausts its retries. With an ACK spoofer on the air, the
    // forged acknowledgements arrive before the ACK timeout and the sender
    // believes every frame was delivered.
    let honest = {
        let mut sim = SpectrumSim::new(SimConfig::ideal());
        sim.add_zigbee(sensor(0x0063, 50));
        sim.run_until(Instant(0).plus_ms(300));
        sim.report()
    };
    assert!(honest.stats.frames_abandoned > 0);
    assert!(honest.stats.retries > 0);
    assert_eq!(honest.readings_delivered, 0);

    let spoofed = {
        let mut sim = SpectrumSim::new(SimConfig::ideal());
        sim.add_zigbee(sensor(0x0063, 50));
        sim.add_ack_spoofer(channel(), 1.0);
        sim.run_until(Instant(0).plus_ms(300));
        sim.report()
    };
    assert!(spoofed.stats.acks_spoofed > 0, "{:?}", spoofed.stats);
    assert_eq!(
        spoofed.stats.frames_abandoned, 0,
        "forged ACKs should suppress every retry exhaustion: {:?}",
        spoofed.stats
    );
    assert_eq!(spoofed.stats.retries, 0, "{:?}", spoofed.stats);
    // The attack's point: the MAC looks healthy, yet nothing was delivered.
    assert_eq!(spoofed.readings_delivered, 0);
}

#[test]
fn reactive_jammer_forces_retries() {
    let quiet = {
        let mut sim = SpectrumSim::new(SimConfig::ideal());
        sim.add_zigbee(coordinator());
        sim.add_zigbee(sensor(0x0063, 50));
        sim.run_until(Instant(0).plus_ms(280));
        sim.report()
    };
    assert_eq!(quiet.stats.retries, 0);
    assert_eq!(quiet.delivery_ratio, 1.0);

    let jammed = {
        let mut sim = SpectrumSim::new(SimConfig::ideal());
        sim.add_zigbee(coordinator());
        sim.add_zigbee(sensor(0x0063, 50));
        sim.add_reactive_jammer(channel(), JammerConfig::default());
        sim.run_until(Instant(0).plus_ms(280));
        sim.report()
    };
    assert!(jammed.stats.jam_bursts > 0);
    assert!(
        jammed.stats.retries + jammed.stats.frames_abandoned > 0,
        "jamming every frame must cost the MAC something: {:?}",
        jammed.stats
    );
    assert!(
        jammed.delivery_ratio < 1.0,
        "a 100%-trigger jammer should not allow clean delivery: {jammed:?}"
    );
}

#[test]
fn flooder_depletes_the_victims_airtime() {
    let baseline = {
        let mut sim = SpectrumSim::new(SimConfig::ideal());
        let coord = sim.add_zigbee(coordinator());
        sim.run_until(Instant(0).plus_ms(200));
        sim.node(coord).airtime_us()
    };
    assert_eq!(baseline, 0, "an idle coordinator transmits nothing");

    let mut sim = SpectrumSim::new(SimConfig::ideal());
    let coord = sim.add_zigbee(coordinator());
    let flooder = sim.add_flooder(
        channel(),
        FlooderConfig {
            pan: PAN,
            src: 0x0099,
            victim: COORD,
            interval_us: 5_000,
        },
    );
    sim.run_until(Instant(0).plus_ms(200));

    let floods = sim.node(flooder).tx_count();
    assert!(floods >= 30, "flooder underperformed: {floods}");
    // Every flood frame extracts a 352 µs ACK from the victim.
    let victim_airtime = sim.node(coord).airtime_us();
    assert!(
        victim_airtime >= floods * 300,
        "victim airtime {victim_airtime} µs for {floods} floods"
    );
    // No readings were faked into the coordinator's display.
    assert!(sim.zigbee(coord).unwrap().readings().is_empty());
}

#[test]
fn committed_event_log_is_deterministic() {
    let run = |iq_chunk: usize| {
        let mut cfg = SimConfig::office();
        cfg.iq_chunk = iq_chunk;
        let mut sim = SpectrumSim::new(cfg);
        sim.add_zigbee(coordinator());
        sim.add_zigbee(sensor(0x0063, 40));
        sim.add_zigbee(sensor(0x0064, 40));
        let attacker = sim.add_wazabee_injector(channel(), 1.0);
        let forged = MacFrame::data(
            PAN,
            0x0063,
            COORD,
            200,
            XbeePayload::reading(9999).to_bytes(),
        );
        sim.inject_at(attacker, Instant(41_500), forged);
        sim.run_until(Instant(0).plus_ms(150));
        sim.event_log().join("\n")
    };
    let a = run(4096);
    let b = run(4096);
    assert_eq!(a, b, "same seed, same log");
    // Chunk-size invariance is inherited from StreamingRx: any chunking of
    // the receiver windows commits the identical event sequence.
    for chunk in [257, 1000, 1 << 20] {
        assert_eq!(a, run(chunk), "iq_chunk={chunk} diverged");
    }
    assert!(!a.is_empty());
}

#[test]
fn timeline_survives_nodes_added_after_enable() {
    // Regression: the per-node airtime baseline was sized when the timeline
    // was armed, so a node added afterwards indexed past its end on the
    // next tick. The sampler now resizes the baseline defensively.
    let mut sim = SpectrumSim::new(SimConfig::ideal());
    let coord = sim.add_zigbee(coordinator());
    sim.enable_timeline(5_000);
    sim.add_zigbee(sensor(0x0063, 40));
    sim.add_zigbee(sensor(0x0064, 55));
    sim.run_until(Instant(0).plus_ms(210));

    let report = sim.report();
    assert!(report.readings_sent > 0);
    assert_eq!(report.delivery_ratio, 1.0);
    assert!(sim.node(coord).airtime_us() > 0, "coordinator never ACKed");

    // The exported timeline carries every node, including the ones that
    // joined after the first tick was armed.
    let jsonl = sim.timeline_jsonl();
    assert!(!jsonl.is_empty());
    for gid in 0..3 {
        let label = format!("\"node\":\"{gid}\"");
        assert!(
            jsonl.contains(&label),
            "timeline is missing series for node {gid}"
        );
    }
    // Occupancy deltas stay in [0, 1]: a bogus baseline would surface as a
    // wild first sample for the late joiners.
    for line in jsonl
        .lines()
        .filter(|l| l.contains("node.airtime_occupancy"))
    {
        let v = line
            .split("\"value\":")
            .nth(1)
            .and_then(|s| s.trim_end_matches('}').parse::<f64>().ok())
            .unwrap_or(f64::NAN);
        assert!((0.0..=1.0).contains(&v), "occupancy out of range: {line}");
    }
}
