//! Scenario A (paper §VI-B): injecting forged 802.15.4 frames into a Zigbee
//! network from an *unrooted* smartphone, using only the public extended
//! advertising API.
//!
//! Run with: `cargo run -p wazabee-examples --bin smartphone_injection`

use wazabee::scenario_a::{EventOutcome, ScenarioA};
use wazabee_ble::adv::BleAddress;
use wazabee_chips::Smartphone;
use wazabee_dot154::{Dot154Channel, MacFrame, Ppdu};
use wazabee_examples::{banner, session};
use wazabee_radio::{Link, LinkConfig};

fn main() {
    let _session = session();
    banner("Scenario A — smartphone 802.15.4 injection");
    let target = Dot154Channel::new(14).expect("channel 14");
    println!("target: {target} (PAN 0x1234, like the paper's testbed)");

    let phone = Smartphone::new(BleAddress::new([0x6B, 0x4F, 0x33, 0x21, 0x8A, 0xC5]), 8);
    println!(
        "phone: unrooted BLE 5 device, extended advertising only; controller \
         access address 0x{:08X}",
        phone.access_address()
    );

    let mut scenario = ScenarioA::new(phone, target, 8).expect("Table II channel");
    println!(
        "whitening pre-inverted for BLE channel {} (shares {} MHz)",
        scenario.target_ble_channel().index(),
        target.center_mhz()
    );

    // The forged frame: a spoofed sensor reading.
    let forged = MacFrame::data(0x1234, 0x0063, 0x0042, 99, vec![0x01, 0x39, 0x05]);
    let ppdu = Ppdu::new(forged.to_psdu()).expect("fits");
    scenario.arm(&ppdu).expect("frame fits in advertising data");
    println!(
        "armed: {}-byte forged PSDU in manufacturer data",
        ppdu.psdu().len()
    );

    banner("advertising campaign");
    let mut link = Link::new(LinkConfig::office_3m(), 42);
    let events = 300;
    let outcomes = scenario.run_events(events, &mut link);
    let mut injected = 0usize;
    let mut on_target = 0usize;
    for (k, o) in outcomes.iter().enumerate() {
        match o {
            EventOutcome::Injected(p) => {
                injected += 1;
                on_target += 1;
                if injected <= 3 {
                    println!(
                        "event {k:3}: CSA#2 hit the target channel — frame injected \
                         (FCS {})",
                        if p.fcs_ok() { "OK" } else { "BAD" }
                    );
                }
            }
            EventOutcome::NotDecoded => on_target += 1,
            EventOutcome::WrongChannel(_) => {}
        }
    }
    banner("results");
    println!("advertising events: {events}");
    println!(
        "events on the target frequency: {on_target} (expected ≈ {})",
        events / 37
    );
    println!("frames decoded by the Zigbee receiver: {injected}");
    println!(
        "injection rate per event: {:.1}% (CSA#2 is uniform over 37 channels → ≈2.7%)",
        100.0 * injected as f64 / events as f64
    );
}
