//! Quickstart: a diverted BLE chip exchanging 802.15.4 frames with a
//! genuine Zigbee radio, over a noisy simulated office link.
//!
//! Run with: `cargo run -p wazabee-examples --bin quickstart`

use wazabee::{WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{Dot154Modem, MacFrame, Ppdu};
use wazabee_examples::{banner, hex, session};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn main() {
    let _session = session();
    let sps = 8;
    let channel_mhz = 2420; // Zigbee channel 14, the paper's testbed channel

    banner("WazaBee quickstart — BLE chip ↔ Zigbee radio");
    println!("simulated link: 3 m office, {channel_mhz} MHz, 22 dB SNR");

    // The victim-side reference radio (an XBee-style 802.15.4 transceiver).
    let zigbee = Dot154Modem::new(sps);
    // The attacker's diverted BLE chip (nRF52832-style, LE 2M).
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
    let mut link = Link::new(LinkConfig::office_3m(), 2021);

    banner("1. BLE chip → Zigbee radio");
    let frame = MacFrame::data(0x1234, 0x0063, 0x0042, 1, b"hello zigbee".to_vec());
    let ppdu = Ppdu::new(frame.to_psdu()).expect("fits");
    println!("transmitting: {}", hex(ppdu.psdu()));
    let air = tx.transmit(&ppdu);
    let heard = link.deliver(
        &RfFrame::new(channel_mhz, air, zigbee.sample_rate()),
        channel_mhz,
    );
    match zigbee.receive(&heard) {
        Some(got) => {
            println!(
                "zigbee radio decoded {} bytes, FCS {}, {} chip errors",
                got.psdu.len(),
                if got.fcs_ok() { "OK" } else { "BAD" },
                got.chip_errors
            );
            let mac = MacFrame::from_psdu(&got.psdu).expect("parse");
            println!(
                "  from {} to {} payload {:?}",
                mac.src,
                mac.dest,
                String::from_utf8_lossy(&mac.payload)
            );
        }
        None => println!("zigbee radio heard nothing!"),
    }

    banner("2. Zigbee radio → BLE chip");
    let reply = MacFrame::data(0x1234, 0x0042, 0x0063, 2, b"hello wazabee".to_vec());
    let ppdu = Ppdu::new(reply.to_psdu()).expect("fits");
    println!("transmitting: {}", hex(ppdu.psdu()));
    let air = zigbee.transmit(&ppdu);
    let heard = link.deliver(
        &RfFrame::new(channel_mhz, air, zigbee.sample_rate()),
        channel_mhz,
    );
    match rx.receive(&heard) {
        Some(got) => {
            println!(
                "BLE chip decoded {} bytes, FCS {}, {} chip errors (sync errors {})",
                got.psdu.len(),
                if got.fcs_ok() { "OK" } else { "BAD" },
                got.chip_errors,
                got.shr_errors
            );
            let mac = MacFrame::from_psdu(&got.psdu).expect("parse");
            println!("  payload {:?}", String::from_utf8_lossy(&mac.payload));
        }
        None => println!("BLE chip heard nothing!"),
    }

    banner("done");
    println!("Both directions of the cross-technology channel work.");
}
