//! The countermeasure (paper §VII): a multi-protocol radio IDS watching one
//! shared frequency, telling legitimate BLE and Zigbee traffic apart from
//! WazaBee injections — including the smartphone attack of Scenario A.
//!
//! Run with: `cargo run -p wazabee-examples --bin ids_monitor`

use wazabee::scenario_a::craft_manufacturer_data;
use wazabee::WazaBeeTx;
use wazabee_ble::adv::BleAddress;
use wazabee_ble::{BleChannel, BleModem, BlePacket, BlePhy};
use wazabee_chips::Smartphone;
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, MacFrame, Ppdu};
use wazabee_dsp::Iq;
use wazabee_examples::{banner, session};
use wazabee_ids::{Alert, ChannelMonitor, MonitorConfig};

fn pad(samples: Vec<Iq>) -> Vec<Iq> {
    let mut buf = vec![Iq::ZERO; 600];
    buf.extend(samples);
    buf.extend(vec![Iq::ZERO; 600]);
    buf
}

fn report(name: &str, alerts: &[Alert]) {
    if alerts.is_empty() {
        println!("{name:<40} -> clean");
    } else {
        for a in alerts {
            let label = match a {
                Alert::CrossProtocolFrame { .. } => "CROSS-PROTOCOL FRAME (WazaBee!)",
                Alert::UnexpectedDot154 { .. } => "unexpected 802.15.4 traffic",
                Alert::TrafficAnomaly { .. } => "traffic anomaly",
            };
            println!("{name:<40} -> ALERT: {label}");
        }
    }
}

fn main() {
    let _session = session();
    banner("multi-protocol IDS on 2420 MHz (Zigbee 14 / BLE 8)");
    let mut monitor = ChannelMonitor::new(
        2420,
        8,
        MonitorConfig {
            dot154_whitelisted: true, // a legitimate Zigbee network lives here
            ..MonitorConfig::default()
        },
    );

    banner("traffic under observation");

    // 1. Legitimate BLE extended advertising.
    let ble = BleModem::new(BlePhy::Le2M, 8);
    let ch8 = BleChannel::new(8).expect("channel 8");
    let adv = BlePacket::advertising(vec![0x02, 0x05, 2, 1, 6, 0xFF, 0x59]);
    report(
        "legitimate BLE advertising",
        &monitor.observe(&pad(ble.transmit(&adv, ch8, true))),
    );

    // 2. Legitimate Zigbee sensor reading (whitelisted).
    let zigbee = Dot154Modem::new(8);
    let reading = Ppdu::new(MacFrame::data(0x1234, 0x63, 0x42, 1, vec![21, 0]).to_psdu()).unwrap();
    report(
        "legitimate Zigbee reading",
        &monitor.observe(&pad(zigbee.transmit(&reading))),
    );

    // 3. A raw WazaBee transmission from a diverted nRF52832.
    let wazabee_tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).expect("LE 2M");
    let forged = Ppdu::new(append_fcs(&[0x66; 6])).unwrap();
    // On this frequency Zigbee is whitelisted, so the raw frame passes as
    // Zigbee... but the same emission on a Zigbee-free frequency is caught:
    let mut monitor_2410 = ChannelMonitor::new(2410, 8, MonitorConfig::default());
    report(
        "raw WazaBee TX on Zigbee-free 2410 MHz",
        &monitor_2410.observe(&pad(wazabee_tx.transmit(&forged))),
    );

    // 4. The Scenario A smartphone injection: a BLE advertisement that is
    //    *simultaneously* a valid Zigbee frame — caught by the cross-protocol
    //    detector even on a whitelisted channel.
    let mut phone = Smartphone::new(BleAddress::new([7, 7, 7, 7, 7, 7]), 8);
    let embedded = MacFrame::data(0x1234, 0x63, 0x42, 9, vec![0xBA, 0xD1]);
    phone
        .set_manufacturer_data(
            craft_manufacturer_data(&Ppdu::new(embedded.to_psdu()).unwrap(), ch8).unwrap(),
        )
        .unwrap();
    monitor
        .classifier_mut()
        .learn_access_address(phone.access_address());
    let aux = loop {
        let ev = phone.advertising_event().unwrap();
        if ev.aux_channel == ch8 {
            break ev.aux_samples;
        }
    };
    let alerts = monitor.observe(&pad(aux));
    report("Scenario A AUX_ADV_IND injection", &alerts);
    for a in &alerts {
        if let Alert::CrossProtocolFrame { psdu, ble_pdu, .. } = a {
            println!(
                "    forensics: BLE PDU {} bytes carrying a valid {}-byte 802.15.4 PSDU",
                ble_pdu.len(),
                psdu.len()
            );
            if let Some(mac) = MacFrame::from_psdu(psdu) {
                println!(
                    "    embedded frame: {:?} from {} to {}",
                    mac.frame_type, mac.src, mac.dest
                );
            }
        }
    }

    banner("verdict");
    println!("Legitimate traffic passes; both WazaBee transmission styles are detected.");
}
