//! Shared helpers for the WazaBee example binaries.

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// End-of-run reporting guard for the example binaries.
///
/// Create one with [`session`] at the top of `main`. On drop — including an
/// early exit through `?` — it prints the telemetry summary, honours
/// `WAZABEE_TELEMETRY_OUT`, flushes any active flight-recorder capture and
/// reports where the artifacts went.
pub struct Session {
    _priv: (),
}

/// Starts an example session: arms the flight recorder from
/// `WAZABEE_CAPTURE_DIR`, starts the telemetry snapshot server when
/// `WAZABEE_TELEMETRY_ADDR` is set (both no-ops when unset or compiled out)
/// and returns the RAII guard that emits every end-of-run report.
pub fn session() -> Session {
    match wazabee_flightrec::init_from_env() {
        Ok(true) => {
            if let Some(dir) = wazabee_flightrec::capture_dir() {
                println!("flight recorder: capturing to {}", dir.display());
            }
        }
        Ok(false) => {}
        Err(e) => eprintln!("flight recorder: could not start capture: {e}"),
    }
    match wazabee_telemetry::serve_from_env() {
        Ok(Some(addr)) => println!("telemetry snapshot server on {addr}"),
        Ok(None) => {}
        Err(e) => eprintln!("telemetry snapshot server failed to start: {e}"),
    }
    Session { _priv: () }
}

impl Drop for Session {
    fn drop(&mut self) {
        banner("telemetry");
        telemetry_footer();
        if wazabee_flightrec::is_active() {
            if let Err(e) = wazabee_flightrec::flush() {
                eprintln!("flight recorder: flush failed: {e}");
            }
            let stats = wazabee_flightrec::stats();
            if let Some(dir) = wazabee_flightrec::capture_dir() {
                println!(
                    "flight recorder: {} traces, {} frames logged, {} PCAP frames, \
                     {} IQ dumps → {}",
                    stats.traces,
                    stats.frames_logged,
                    stats.pcap_frames,
                    stats.iq_dumps,
                    dir.display()
                );
            }
        }
    }
}

/// Prints the end-of-run telemetry summary and, when `WAZABEE_TELEMETRY_OUT`
/// / `WAZABEE_TRACE_OUT` are set, dumps every metric and trace record as
/// JSONL / Chrome Trace JSON to those paths.
pub fn telemetry_footer() {
    print!("{}", wazabee_telemetry::summary());
    match wazabee_telemetry::dump_from_env() {
        Ok(true) => println!(
            "telemetry dumped to {}",
            std::env::var(wazabee_telemetry::ENV_OUT).unwrap_or_default()
        ),
        Ok(false) => {}
        Err(e) => eprintln!("telemetry dump failed: {e}"),
    }
    match wazabee_telemetry::dump_trace_from_env() {
        Ok(true) => println!(
            "chrome trace dumped to {} (load in https://ui.perfetto.dev)",
            std::env::var(wazabee_telemetry::ENV_TRACE_OUT).unwrap_or_default()
        ),
        Ok(false) => {}
        Err(e) => eprintln!("chrome trace dump failed: {e}"),
    }
}

/// Formats bytes as a hex dump line.
pub fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formats() {
        assert_eq!(hex(&[0xDE, 0xAD]), "de ad");
        assert_eq!(hex(&[]), "");
    }
}
