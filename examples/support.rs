//! Shared helpers for the WazaBee example binaries.

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Formats bytes as a hex dump line.
pub fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formats() {
        assert_eq!(hex(&[0xDE, 0xAD]), "de ad");
        assert_eq!(hex(&[]), "");
    }
}
