//! Shared helpers for the WazaBee example binaries.

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints the end-of-run telemetry summary and, when `WAZABEE_TELEMETRY_OUT`
/// is set, dumps every metric and trace record as JSONL to that path.
pub fn telemetry_footer() {
    print!("{}", wazabee_telemetry::summary());
    match wazabee_telemetry::dump_from_env() {
        Ok(true) => println!(
            "telemetry dumped to {}",
            std::env::var(wazabee_telemetry::ENV_OUT).unwrap_or_default()
        ),
        Ok(false) => {}
        Err(e) => eprintln!("telemetry dump failed: {e}"),
    }
}

/// Formats bytes as a hex dump line.
pub fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formats() {
        assert_eq!(hex(&[0xDE, 0xAD]), "de ad");
        assert_eq!(hex(&[]), "");
    }
}
