//! A passive Zigbee sniffer built from a diverted BLE chip: the WazaBee
//! reception primitive decoding every frame of a live network, including
//! ones a legitimate BLE stack would have discarded for failing its CRC.
//!
//! Run with: `cargo run -p wazabee-examples --bin zigbee_sniffer`

use wazabee::WazaBeeRx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{Dot154Channel, Dot154Modem, MacFrame, Ppdu};
use wazabee_examples::{banner, hex, session};
use wazabee_radio::{Instant, Link, LinkConfig, RfFrame};
use wazabee_zigbee::{XbeePayload, ZigbeeNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _session = session();
    banner("WazaBee Zigbee sniffer on a BLE chip");
    let channel = Dot154Channel::new(14).ok_or("channel 14 out of range")?;
    println!(
        "listening on {channel} with access address 0x{:08X}",
        wazabee::access_address_value()
    );

    let mut net = ZigbeeNetwork::paper_testbed();
    let sniffer = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8))?;
    let xbee_radio = Dot154Modem::new(8);
    let mut link = Link::new(LinkConfig::office_3m(), 99);

    // Let the network live for 12 seconds, then replay its air log through
    // the PHY into the diverted BLE receiver.
    net.run_until(Instant(0).plus_ms(12_000));
    banner("captured traffic");
    let mut heard = 0usize;
    for record in net.log().to_vec() {
        if record.channel != channel {
            continue;
        }
        let Ok(ppdu) = Ppdu::new(record.psdu.clone()) else {
            continue;
        };
        let air = xbee_radio.transmit(&ppdu);
        let rf = RfFrame::new(channel.center_mhz(), air, xbee_radio.sample_rate());
        let rx_samples = link.deliver(&rf, channel.center_mhz());
        let Some(captured) = sniffer.receive(&rx_samples) else {
            println!("{}  [missed]", record.time);
            continue;
        };
        heard += 1;
        let rssi = wazabee_dsp::iq::rssi_dbfs(&rx_samples);
        let fcs = if captured.fcs_ok() {
            "FCS ok "
        } else {
            "FCS BAD"
        };
        match MacFrame::from_psdu(&captured.psdu) {
            Some(frame) => {
                let detail = XbeePayload::from_bytes(&frame.payload)
                    .and_then(|p| p.as_reading())
                    .map(|v| format!("reading={v}"))
                    .unwrap_or_default();
                println!(
                    "{}  {}  LQI {:>3}  RSSI {:>6.1} dBFS  {:?} seq={} {} → {}  {}",
                    record.time,
                    fcs,
                    captured.lqi(),
                    rssi,
                    frame.frame_type,
                    frame.sequence,
                    frame.src,
                    frame.dest,
                    detail
                );
            }
            None => println!("{}  {}  raw: {}", record.time, fcs, hex(&captured.psdu)),
        }
    }
    // A real SDR front-end hands samples over in fixed-size chunks and does
    // not promise one frame per buffer. Streaming mode: one long capture
    // holding a decoy burst (sync pattern followed by garbage, the kind of
    // hit that used to swallow the whole buffer) and three genuine frames,
    // pushed through the re-arming receiver 4096 samples at a time.
    banner("chunked streaming capture");
    use wazabee_dot154::msk::frame_chips_to_msk;
    use wazabee_dot154::pn::pn_sequence;
    let ble = BleModem::new(BlePhy::Le2M, 8);
    let mut decoy_bits: Vec<u8> = (0..wazabee::tx::TX_WARMUP_BITS)
        .map(|k| (k % 2) as u8)
        .collect();
    let mut decoy_chips: Vec<u8> = pn_sequence(0).to_vec();
    decoy_chips.extend(pn_sequence(5));
    decoy_bits.extend(frame_chips_to_msk(&decoy_chips, 0));
    let mut capture = ble.transmit_raw(&decoy_bits);
    for (k, payload) in [&b"temp=21C"[..], b"door=shut", b"lux=830"]
        .iter()
        .enumerate()
    {
        capture.extend(vec![wazabee_dsp::iq::Iq::ZERO; 900 + 333 * k]);
        let frame = MacFrame::data(0x1234, 0x0063, 0x0042, k as u8, payload.to_vec());
        let ppdu = Ppdu::new(frame.to_psdu()).expect("sensor frame fits a PSDU");
        capture.extend(xbee_radio.transmit(&ppdu));
    }
    let mut stream = sniffer.stream();
    let mut results = Vec::new();
    for chunk in capture.chunks(4096) {
        results.extend(stream.push(chunk));
    }
    results.extend(stream.finish());
    let mut recovered = 0usize;
    for (k, r) in results.iter().enumerate() {
        match r {
            Ok(frame) => {
                recovered += 1;
                println!("attempt {k:>2}: frame {}", hex(&frame.psdu));
            }
            Err(e) => println!("attempt {k:>2}: {e}"),
        }
    }
    println!(
        "{recovered} frames recovered behind the decoy ({} attempts, {} chunks)",
        results.len(),
        capture.len().div_ceil(4096)
    );

    banner("summary");
    println!(
        "{} of {} frames on {} decoded by the diverted BLE chip",
        heard,
        net.log().iter().filter(|r| r.channel == channel).count(),
        channel
    );
    Ok(())
}
