//! A passive Zigbee sniffer built from a diverted BLE chip: the WazaBee
//! reception primitive decoding every frame of a live network, including
//! ones a legitimate BLE stack would have discarded for failing its CRC.
//!
//! Run with: `cargo run -p wazabee-examples --bin zigbee_sniffer`

use wazabee::WazaBeeRx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{Dot154Channel, Dot154Modem, MacFrame, Ppdu};
use wazabee_examples::{banner, hex, session};
use wazabee_radio::{Instant, Link, LinkConfig, RfFrame};
use wazabee_zigbee::{XbeePayload, ZigbeeNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _session = session();
    banner("WazaBee Zigbee sniffer on a BLE chip");
    let channel = Dot154Channel::new(14).ok_or("channel 14 out of range")?;
    println!(
        "listening on {channel} with access address 0x{:08X}",
        wazabee::access_address_value()
    );

    let mut net = ZigbeeNetwork::paper_testbed();
    let sniffer = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8))?;
    let xbee_radio = Dot154Modem::new(8);
    let mut link = Link::new(LinkConfig::office_3m(), 99);

    // Let the network live for 12 seconds, then replay its air log through
    // the PHY into the diverted BLE receiver.
    net.run_until(Instant(0).plus_ms(12_000));
    banner("captured traffic");
    let mut heard = 0usize;
    for record in net.log().to_vec() {
        if record.channel != channel {
            continue;
        }
        let Ok(ppdu) = Ppdu::new(record.psdu.clone()) else {
            continue;
        };
        let air = xbee_radio.transmit(&ppdu);
        let rf = RfFrame::new(channel.center_mhz(), air, xbee_radio.sample_rate());
        let rx_samples = link.deliver(&rf, channel.center_mhz());
        let Some(captured) = sniffer.receive(&rx_samples) else {
            println!("{}  [missed]", record.time);
            continue;
        };
        heard += 1;
        let rssi = wazabee_dsp::iq::rssi_dbfs(&rx_samples);
        let fcs = if captured.fcs_ok() {
            "FCS ok "
        } else {
            "FCS BAD"
        };
        match MacFrame::from_psdu(&captured.psdu) {
            Some(frame) => {
                let detail = XbeePayload::from_bytes(&frame.payload)
                    .and_then(|p| p.as_reading())
                    .map(|v| format!("reading={v}"))
                    .unwrap_or_default();
                println!(
                    "{}  {}  LQI {:>3}  RSSI {:>6.1} dBFS  {:?} seq={} {} → {}  {}",
                    record.time,
                    fcs,
                    captured.lqi(),
                    rssi,
                    frame.frame_type,
                    frame.sequence,
                    frame.src,
                    frame.dest,
                    detail
                );
            }
            None => println!("{}  {}  raw: {}", record.time, fcs, hex(&captured.psdu)),
        }
    }
    banner("summary");
    println!(
        "{} of {} frames on {} decoded by the diverted BLE chip",
        heard,
        net.log().iter().filter(|r| r.channel == channel).count(),
        channel
    );
    Ok(())
}
