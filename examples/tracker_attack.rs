//! Scenario B (paper §VI-C): a compromised BLE tracker (nRF51822, no LE 2M —
//! Enhanced ShockBurst 2 Mbit/s instead) runs a four-step attack against a
//! Zigbee home-automation network.
//!
//! Run with: `cargo run -p wazabee-examples --bin tracker_attack`

use wazabee::TrackerAttack;
use wazabee_chips::nrf51822;
use wazabee_examples::{banner, session};
use wazabee_radio::{Link, LinkConfig};
use wazabee_zigbee::ZigbeeNetwork;

fn main() {
    let _session = session();
    banner("Scenario B — complex Zigbee attack from a BLE tracker");
    let caps = nrf51822();
    println!(
        "attacker chip: {} (LE 2M: {}, ESB 2M: {}) — flashed via unprotected SWD pins",
        caps.name, caps.le_2m, caps.esb_2m
    );

    let mut net = ZigbeeNetwork::paper_testbed();
    println!(
        "victim: PAN 0x1234 on channel 14 — sensor 0x0063 reports every 2 s to coordinator 0x0042"
    );

    let mut attack = TrackerAttack::new(8).expect("ESB is 2 Mbit/s");
    let mut link = Link::new(LinkConfig::office_3m(), 7);

    banner("step 1 — active scanning");
    let pan = attack
        .active_scan(&mut net, &mut link)
        .expect("no coordinator found");
    println!(
        "beacon heard on {}: PAN 0x{:04X}, coordinator 0x{:04X}",
        pan.channel, pan.pan, pan.coordinator
    );

    banner("step 2 — eavesdropping");
    let sensor = attack
        .eavesdrop(&mut net, &mut link, pan, 8_000)
        .expect("no sensor traffic heard");
    println!("sensor address learned from sniffed data frame: 0x{sensor:04X}");
    let legit_before = net.coordinator().readings().len();
    println!("coordinator display currently shows {legit_before} legitimate readings");

    banner("step 3 — remote AT command injection (denial of service)");
    let ok = attack.inject_remote_at(&mut net, &mut link, pan, sensor);
    println!(
        "forged remote AT 'CH {}' from 0x{:04X} to 0x{:04X}: {}",
        attack.dos_channel.number(),
        pan.coordinator,
        sensor,
        if ok {
            "ACKNOWLEDGED — sensor exiled"
        } else {
            "failed"
        }
    );

    banner("step 4 — fake data injection");
    let accepted = attack.inject_fake_readings(&mut net, &mut link, pan, sensor, 1337, 8, 500);
    println!("{accepted}/8 spoofed readings accepted by the coordinator");

    banner("result");
    let readings = net.coordinator().readings();
    println!("coordinator display ({} readings):", readings.len());
    for r in readings
        .iter()
        .rev()
        .take(10)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!(
            "  {}  value {:5}  from 0x{:04X}",
            r.time, r.value, r.reported_by
        );
    }
    println!(
        "the tail values are the attacker's — the real sensor now idles on {}",
        attack.dos_channel
    );
}
