//! The covert-channel use case from the paper's introduction: a compromised
//! BLE device exfiltrates data over 802.15.4 — "a protocol that is not
//! supposed to be monitored in the targeted environment" — while a
//! multi-protocol IDS demonstrates why such monitoring matters.
//!
//! Run with: `cargo run -p wazabee-examples --bin covert_exfil`

use wazabee::exfil::{exfil_frames, ExfilCollector, ExfilConfig};
use wazabee::WazaBeeTx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{Dot154Modem, MacFrame};
use wazabee_dsp::Iq;
use wazabee_examples::{banner, session};
use wazabee_ids::{Alert, ChannelMonitor, MonitorConfig};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn main() {
    let _session = session();
    banner("covert exfiltration over WazaBee");
    let secret = b"Q3 acquisition shortlist: [REDACTED-1], [REDACTED-2], [REDACTED-3]".to_vec();
    println!(
        "payload: {} bytes across 2410 MHz (Zigbee 12 — no Zigbee deployed there)",
        secret.len()
    );

    let cfg = ExfilConfig {
        chunk_size: 32,
        ..ExfilConfig::default()
    };
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).expect("LE 2M");
    let receiver = Dot154Modem::new(8); // the attacker's remote 802.15.4 dongle
    let mut link = Link::new(LinkConfig::office_3m(), 66);
    let mut collector = ExfilCollector::new();

    // The defender's monitor on the same frequency.
    let mut monitor = ChannelMonitor::new(2410, 8, MonitorConfig::default());
    let mut alerts_total = 0usize;

    banner("transmission");
    let frames = exfil_frames(&secret, 1, &cfg).expect("fits");
    println!("{} chunks of ≤{} bytes", frames.len(), cfg.chunk_size);
    let mut recovered = None;
    for (k, ppdu) in frames.iter().enumerate() {
        let air = tx.transmit(ppdu);
        let heard = link.deliver(
            &RfFrame::new(2410, air.clone(), receiver.sample_rate()),
            2410,
        );
        if let Some(rx) = receiver.receive(&heard) {
            if rx.fcs_ok() {
                if let Some(mac) = MacFrame::from_psdu(&rx.psdu) {
                    recovered = collector.ingest(&mac).or(recovered);
                    println!(
                        "chunk {k}: delivered ({} chip errors){}",
                        rx.chip_errors,
                        collector
                            .progress(1)
                            .map(|(got, total)| format!(" — {got}/{total} collected"))
                            .unwrap_or_else(|| " — stream complete".into())
                    );
                }
            }
        }
        // The defender hears the same burst.
        let mut window = vec![Iq::ZERO; 600];
        window.extend(link.deliver(&RfFrame::new(2410, air, receiver.sample_rate()), 2410));
        let alerts = monitor.observe(&window);
        alerts_total += alerts
            .iter()
            .filter(|a| matches!(a, Alert::UnexpectedDot154 { .. }))
            .count();
    }

    banner("result");
    match recovered {
        Some(data) => {
            println!("attacker reassembled {} bytes:", data.len());
            println!("  {:?}", String::from_utf8_lossy(&data));
            assert_eq!(data, secret);
        }
        None => println!("exfiltration incomplete"),
    }
    println!();
    println!(
        "defender's IDS on the same band raised {alerts_total}/{} unexpected-802.15.4 alerts — \
         the monitoring the paper's §VII calls for works",
        frames.len()
    );
}
