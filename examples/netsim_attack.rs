//! A WazaBee attack on a *live, contended* Zigbee network: the shared
//! spectrum simulator runs a coordinator and two periodic sensors over real
//! CSMA/CA, then a diverted BLE chip injects a forged reading (no carrier
//! sense) while a reactive jammer tramples retransmissions — all modulated,
//! superposed and demodulated at the waveform level. A passive IDS monitor
//! watches the same ether.
//!
//! Run with: `cargo run -p wazabee-examples --bin netsim_attack`

use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::Dot154Channel;
use wazabee_examples::{banner, session};
use wazabee_ids::MonitorConfig;
use wazabee_radio::Instant;
use wazabee_sim::{JammerConfig, SimConfig, SpectrumSim};
use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode, XbeePayload};

const PAN: u16 = 0x1234;
const COORD: u16 = 0x0042;

fn node(addr: u16, role: NodeRole) -> XbeeNode {
    XbeeNode::new(
        NodeConfig {
            pan: PAN,
            short_addr: addr,
            channel: Dot154Channel::new(14).unwrap(),
        },
        role,
    )
}

fn main() {
    let _session = session();
    let ch = Dot154Channel::new(14).unwrap();

    banner("network under attack: 3 Zigbee nodes + WazaBee injector + jammer + IDS");
    let mut sim = SpectrumSim::new(SimConfig::office());
    let coord = sim.add_zigbee(node(COORD, NodeRole::Coordinator));
    sim.add_zigbee(node(0x0063, NodeRole::Sensor { interval_ms: 47 }));
    sim.add_zigbee(node(0x0064, NodeRole::Sensor { interval_ms: 59 }));
    let ids = sim.add_ids_monitor(ch, MonitorConfig::default());
    let attacker = sim.add_wazabee_injector(ch, 1.0);
    sim.add_reactive_jammer(
        ch,
        JammerConfig {
            trigger_probability: 0.25,
            ..JammerConfig::default()
        },
    );

    // The forged reading: the attacker's BLE radio, locked to 2 Mbit/s GFSK,
    // emits a waveform the victims demodulate as O-QPSK — sensor 0x0063
    // appears to report the absurd value 9999.
    let forged = MacFrame::data(
        PAN,
        0x0063,
        COORD,
        200,
        XbeePayload::reading(9999).to_bytes(),
    );
    sim.inject_at(attacker, Instant(101_000), forged);

    sim.set_traffic_deadline(Instant(0).plus_ms(300));
    sim.run_until(Instant(0).plus_ms(350));

    banner("what the coordinator believes");
    let victim = sim.zigbee(coord).unwrap();
    for r in victim.readings() {
        let mark = if r.value == 9999 { "  <-- FORGED" } else { "" };
        println!("  reading {:5} from 0x{:04X}{mark}", r.value, r.reported_by);
    }

    banner("delivery report");
    let report = sim.report();
    println!(
        "  {}/{} legitimate readings delivered ({:.1}%)",
        report.readings_delivered,
        report.readings_sent,
        100.0 * report.delivery_ratio
    );
    let s = &report.stats;
    println!(
        "  collisions={} cca_busy={} retries={} abandoned={} jam_bursts={}",
        s.collisions, s.cca_busy, s.retries, s.frames_abandoned, s.jam_bursts
    );

    banner("airtime (the energy bill)");
    for (k, n) in sim.nodes().enumerate() {
        println!(
            "  node {k} ({:>7}): {:6} us keyed up over {} transmissions",
            n.kind_name(),
            n.airtime_us(),
            n.tx_count()
        );
    }

    banner("what the IDS saw");
    let alerts = sim.alerts(ids);
    if alerts.is_empty() {
        println!("  (no alerts)");
    }
    for (when, alert) in alerts {
        println!("  t={:6} us  {alert:?}", when.0);
    }

    banner("verdict");
    println!(
        "The forged reading crossed the full IQ path into the victim's application\n\
         layer, the jammer cost the network {} retransmissions, and the IDS\n\
         flagged the attacker's emissions on the shared ether.",
        s.retries
    );
}
