//! Scenario A end to end: the smartphone's extended-advertising injection
//! lands spoofed readings on the victim network's coordinator display.

use wazabee::scenario_a::{EventOutcome, ScenarioA};
use wazabee_ble::adv::BleAddress;
use wazabee_chips::{smartphone_ble5, Smartphone};
use wazabee_dot154::{Dot154Channel, MacFrame, Ppdu};
use wazabee_radio::{Link, LinkConfig};
use wazabee_zigbee::ZigbeeNetwork;

#[test]
fn injected_frames_reach_the_coordinator_display() {
    let target = Dot154Channel::new(14).unwrap();
    let phone = Smartphone::new(BleAddress::new([0x11, 0x22, 0x33, 0x44, 0x55, 0x66]), 8);
    let mut scenario = ScenarioA::new(phone, target, 8).unwrap();

    // The forged frame: a fake reading from the sensor's address.
    let forged = MacFrame::data(0x1234, 0x0063, 0x0042, 42, {
        wazabee_zigbee::XbeePayload::reading(31337).to_bytes()
    });
    scenario.arm(&Ppdu::new(forged.to_psdu()).unwrap()).unwrap();

    let mut net = ZigbeeNetwork::paper_testbed();
    let mut link = Link::new(LinkConfig::office_3m(), 2);
    let mut injections = 0usize;
    for _ in 0..400 {
        if let EventOutcome::Injected(ppdu) = scenario.run_event(&mut link) {
            // What the reference receiver decoded goes into the network —
            // exactly what the XBee coordinator's radio would have seen.
            net.inject(target, ppdu.psdu);
            injections += 1;
        }
    }
    assert!(injections > 0, "CSA#2 never hit the target in 400 events");
    let deadline = net.now().plus_ms(50);
    net.run_until(deadline);
    let spoofed = net
        .coordinator()
        .readings()
        .iter()
        .filter(|r| r.value == 31337 && r.reported_by == 0x0063)
        .count();
    assert_eq!(
        spoofed, injections,
        "not every injection reached the display"
    );
}

#[test]
fn smartphone_capabilities_match_the_scenario() {
    // The capability sheet says the phone cannot run the raw primitives —
    // and yet Scenario A works, which is the paper's headline point.
    let caps = smartphone_ble5();
    assert!(!caps.can_raw_transmit());
    assert!(!caps.can_raw_receive());
    assert!(caps.le_2m);
}

#[test]
fn injection_works_on_every_table2_data_channel() {
    // All Table II channels except Zigbee 26 (whose BLE twin is a primary
    // advertising channel) are reachable from the high-level API.
    for z in [12u8, 14, 16, 18, 20, 22, 24] {
        let target = Dot154Channel::new(z).unwrap();
        let phone = Smartphone::new(BleAddress::new([z, 1, 2, 3, 4, 5]), 8);
        let mut scenario = ScenarioA::new(phone, target, 8).unwrap();
        let ppdu = Ppdu::new(wazabee_dot154::fcs::append_fcs(&[z, 0xAB])).unwrap();
        scenario.arm(&ppdu).unwrap();
        let mut link = Link::new(LinkConfig::ideal(), u64::from(z));
        let outcomes = scenario.run_events(200, &mut link);
        let hit = outcomes.iter().any(|o| match o {
            EventOutcome::Injected(p) => p.psdu == ppdu.psdu(),
            _ => false,
        });
        assert!(hit, "no injection on Zigbee channel {z} within 200 events");
    }
}
