//! End-to-end coverage for the `wazabee-serve` multi-tenant decode plane:
//! concurrent loopback sessions over TCP and unix sockets, per-session
//! artifact trees, bounded-queue backpressure on a deliberately slowed
//! decode plane, graceful-shutdown draining and file tailing.
//!
//! Everything here runs against real sockets on loopback and real modulated
//! 802.15.4 IQ — the same waveforms the rest of the suite decodes — so a
//! recovered frame exercises the full path: wire protocol → planar
//! conversion → bounded queue → pooled `StreamingRx` → PCAP/JSONL/report
//! artifacts.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_dsp::io::SampleFormat;
use wazabee_dsp::{Iq, IqBuf};
use wazabee_flightrec::pcap::read_pcap;
use wazabee_serve::{proto, ServeConfig, Server};

const SPS: usize = 8;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wzb-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A clean capture holding `frames` deliveries whose payloads encode the
/// (session, frame) pair, so recovery is checkable per frame.
fn capture(session: u8, frames: usize) -> Vec<Iq> {
    let modem = Dot154Modem::new(SPS);
    let mut air = vec![Iq::ZERO; 400];
    for k in 0..frames {
        let ppdu = Ppdu::new(append_fcs(&[session, k as u8, 0xDE, 0xC0, 0xDE])).unwrap();
        air.extend(modem.transmit(&ppdu));
        air.extend(vec![Iq::ZERO; 500 + 97 * (k % 3)]);
    }
    air
}

/// Streams `air` over `conn` as wire-protocol records in `chunk`-sample
/// batches of the given sample format.
fn stream_capture(
    conn: &mut impl Write,
    air: &[Iq],
    format: SampleFormat,
    chunk: usize,
) -> std::io::Result<()> {
    let mut planar = IqBuf::with_capacity(chunk);
    for c in air.chunks(chunk) {
        planar.clear();
        planar.extend_interleaved(c);
        proto::write_samples(conn, format, &format.encode(planar.as_slice()))?;
    }
    proto::write_end(conn)?;
    conn.flush()
}

#[test]
fn concurrent_tcp_sessions_recover_all_frames_with_artifacts() {
    let out = tmp_dir("e2e");
    let sessions = 6usize;
    let frames = 3usize;
    let mut server = Server::start(ServeConfig {
        workers: 2,
        output_dir: Some(out.clone()),
        sps: SPS,
        ..ServeConfig::default()
    });
    let addr = server.bind_tcp("127.0.0.1:0").unwrap();

    // Every client picks its own wire format, so both codecs are covered.
    let clients: Vec<_> = (0..sessions)
        .map(|s| {
            std::thread::spawn(move || {
                let format = if s % 2 == 0 {
                    SampleFormat::Cf32
                } else {
                    SampleFormat::U8Offset128
                };
                let mut conn = TcpStream::connect(addr).unwrap();
                proto::write_hello(&mut conn, &format!("tenant-{s}")).unwrap();
                stream_capture(&mut conn, &capture(s as u8, frames), format, 4096).unwrap();
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let summary = server.shutdown();

    assert_eq!(summary.reports.len(), sessions);
    assert_eq!(summary.total_frames(), (sessions * frames) as u64);
    for report in &summary.reports {
        assert_eq!(report.frames, frames as u64, "session {}", report.name);
        assert_eq!(report.crc_fail, 0, "session {}", report.name);
        assert_eq!(report.chunks_dropped, 0, "socket ingest never drops");
        assert!(
            report.name.contains("tenant-"),
            "hello rename: {}",
            report.name
        );

        // Per-session artifact tree: PCAP with the session's frames (each
        // payload tagged with the session number), JSONL log, JSON report.
        let dir = out.join(&report.name);
        let pcap = read_pcap(&dir.join("frames.pcap")).unwrap();
        assert_eq!(pcap.packets.len(), frames);
        let tenant: u8 = report
            .name
            .split("tenant-")
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        for (k, pkt) in pcap.packets.iter().enumerate() {
            assert_eq!(pkt.bytes[0], tenant, "frame routed to the wrong session");
            assert_eq!(pkt.bytes[1], k as u8, "frames out of order");
        }
        let jsonl = std::fs::read_to_string(dir.join("frames.jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), frames);
        assert!(jsonl.lines().all(|l| l.contains("\"fcs_ok\":true")));
        let rep = std::fs::read_to_string(dir.join("report.json")).unwrap();
        assert!(rep.contains(&format!("\"frames\": {frames}")));
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn unix_socket_session_decodes_frames() {
    let out = tmp_dir("unix");
    let sock = out.join("serve.sock");
    let mut server = Server::start(ServeConfig {
        workers: 1,
        sps: SPS,
        ..ServeConfig::default()
    });
    server.bind_unix(&sock).unwrap();
    let mut conn = std::os::unix::net::UnixStream::connect(&sock).unwrap();
    proto::write_hello(&mut conn, "uds").unwrap();
    stream_capture(&mut conn, &capture(9, 2), SampleFormat::Cf32, 2048).unwrap();
    drop(conn);
    let summary = server.shutdown();
    assert_eq!(summary.reports.len(), 1);
    assert_eq!(summary.reports[0].frames, 2);
    assert!(summary.reports[0].name.ends_with("-uds"));
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn full_queue_blocks_socket_ingest_without_unbounded_memory() {
    // A deliberately slow decode plane (2 ms per chunk) against a
    // firehosing client: the bounded queue must stall the producer rather
    // than buffer without limit, so the observed high-water mark can never
    // exceed the configured bound — and, because the socket path blocks
    // instead of dropping, every chunk must still be decoded. The client
    // runs over a unix socket, whose kernel buffering is small and fixed
    // (~208 KiB, no TCP-style window autotuning), so pushing ~3 MiB
    // guarantees the producer actually sits in backpressure stalls.
    let queue_chunks = 4usize;
    let total_chunks = 100usize;
    let chunk_samples = 4096usize; // 32 KiB cf32 per chunk
    let out = tmp_dir("backpressure");
    let sock = out.join("firehose.sock");
    let mut server = Server::start(ServeConfig {
        workers: 1,
        queue_chunks,
        sps: SPS,
        decode_delay: Duration::from_millis(2),
        ..ServeConfig::default()
    });
    server.bind_unix(&sock).unwrap();

    let started = Instant::now();
    let mut conn = std::os::unix::net::UnixStream::connect(&sock).unwrap();
    proto::write_hello(&mut conn, "firehose").unwrap();
    let air = vec![Iq::ZERO; total_chunks * chunk_samples];
    stream_capture(&mut conn, &air, SampleFormat::Cf32, chunk_samples).unwrap();
    drop(conn);
    let produced_in = started.elapsed();

    let summary = server.shutdown();
    let report = &summary.reports[0];
    assert_eq!(report.chunks_in, total_chunks as u64, "no chunk lost");
    assert_eq!(report.chunks_dropped, 0, "socket ingest never drops");
    assert!(
        report.queue_high_water <= queue_chunks as u64 + 1,
        "queue grew past its bound: high water {} vs cap {queue_chunks}",
        report.queue_high_water
    );
    // The producer finishing proves it was *blocked*, not buffered: the
    // queue holds 4 chunks and the socket ~7 more, so ~89 of the 100 chunks
    // can only enter after a 2 ms decode frees a slot. 50 ms is a generous
    // floor on those ≈178 ms of stalls.
    let floor = Duration::from_millis(50);
    assert!(
        produced_in >= floor,
        "producer finished in {produced_in:?}; expected >= {floor:?} of backpressure"
    );
}

#[test]
fn shutdown_drains_queued_chunks_before_reporting() {
    // Enqueue a whole capture against a slowed decode plane, then shut down
    // immediately: the drain contract says nothing enqueued is lost, so the
    // report must still show every frame.
    let mut server = Server::start(ServeConfig {
        workers: 1,
        queue_chunks: 64,
        sps: SPS,
        decode_delay: Duration::from_millis(2),
        ..ServeConfig::default()
    });
    let addr = server.bind_tcp("127.0.0.1:0").unwrap();
    let frames = 4usize;
    let mut conn = TcpStream::connect(addr).unwrap();
    proto::write_hello(&mut conn, "drain").unwrap();
    stream_capture(&mut conn, &capture(3, frames), SampleFormat::Cf32, 1024).unwrap();
    drop(conn);
    // No settling sleep: shutdown itself must wait for the queued chunks.
    let summary = server.shutdown();
    assert_eq!(summary.reports.len(), 1);
    assert_eq!(summary.reports[0].frames, frames as u64);
    assert_eq!(summary.reports[0].crc_fail, 0);
}

#[test]
fn file_tail_follows_growth_and_reports_on_shutdown() {
    let out = tmp_dir("tail");
    let path = out.join("capture.cf32");
    let air = capture(7, 2);
    let split = air.len() / 2;

    // First half on disk before the tail starts; second half appended while
    // the tail is live (with a ragged flush boundary mid-sample to exercise
    // the remainder carry).
    let mut planar = IqBuf::with_capacity(air.len());
    planar.extend_interleaved(&air);
    let bytes = SampleFormat::Cf32.encode(planar.as_slice());
    let split_bytes = split * SampleFormat::Cf32.bytes_per_sample();
    std::fs::write(&path, &bytes[..split_bytes]).unwrap();

    let server = Server::start(ServeConfig {
        workers: 1,
        sps: SPS,
        tail_poll_ms: 5,
        ..ServeConfig::default()
    });
    server
        .tail_file(&path, SampleFormat::Cf32, "growing")
        .unwrap();
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        // A few unaligned appends: the tail must carry partial samples.
        f.write_all(&bytes[split_bytes..split_bytes + 3]).unwrap();
        f.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        f.write_all(&bytes[split_bytes + 3..]).unwrap();
        f.flush().unwrap();
    }
    // Let the tail catch up to the final length before shutdown's last poll.
    std::thread::sleep(Duration::from_millis(60));
    let summary = server.shutdown();
    assert_eq!(summary.reports.len(), 1);
    let report = &summary.reports[0];
    assert!(report.name.contains("tail-growing"), "{}", report.name);
    assert_eq!(report.frames, 2, "both frames across the growth boundary");
    assert_eq!(report.bytes_in, bytes.len() as u64, "every byte ingested");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn protocol_error_ends_only_the_offending_session() {
    let mut server = Server::start(ServeConfig {
        workers: 1,
        sps: SPS,
        ..ServeConfig::default()
    });
    let addr = server.bind_tcp("127.0.0.1:0").unwrap();

    // A garbage client: unknown tag right after hello.
    let mut bad = TcpStream::connect(addr).unwrap();
    proto::write_hello(&mut bad, "corrupt").unwrap();
    bad.write_all(&[0xEE, 4, 0, 0, 0, 1, 2, 3, 4]).unwrap();
    bad.flush().unwrap();
    drop(bad);

    // A well-behaved neighbour on the same worker keeps decoding.
    let mut good = TcpStream::connect(addr).unwrap();
    proto::write_hello(&mut good, "clean").unwrap();
    stream_capture(&mut good, &capture(1, 2), SampleFormat::U8Offset128, 2048).unwrap();
    drop(good);

    let summary = server.shutdown();
    assert_eq!(summary.reports.len(), 2);
    let by_name = |needle: &str| {
        summary
            .reports
            .iter()
            .find(|r| r.name.contains(needle))
            .unwrap()
    };
    assert_eq!(by_name("corrupt").frames, 0);
    assert_eq!(by_name("clean").frames, 2);
}
