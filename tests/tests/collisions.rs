//! Collision behaviour: WazaBee injects without carrier sensing, so its
//! frames can and do collide with legitimate traffic — and equal-power
//! collisions destroy both frames, exactly like on real air.

use wazabee::WazaBeeTx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_dsp::Iq;
use wazabee_radio::combine_at;

fn frame(payload: &[u8]) -> Ppdu {
    Ppdu::new(append_fcs(payload)).unwrap()
}

#[test]
fn fully_overlapping_equal_power_frames_destroy_each_other() {
    let zigbee = Dot154Modem::new(8);
    let a = frame(&[0xAA; 10]);
    let b = frame(&[0xBB; 10]);
    let mut air = zigbee.transmit(&a);
    let other = zigbee.transmit(&b);
    combine_at(&mut air, &other, 0);
    match zigbee.receive(&air) {
        None => {}
        Some(r) => {
            assert!(
                !r.fcs_ok() || (r.psdu != a.psdu() && r.psdu != b.psdu()),
                "a clean frame survived a full-power collision"
            );
        }
    }
}

#[test]
fn non_overlapping_frames_both_survive() {
    let zigbee = Dot154Modem::new(8);
    let a = frame(&[0xAA, 1]);
    let b = frame(&[0xBB, 2]);
    let mut air = zigbee.transmit(&a);
    let gap = air.len() + 200;
    let other = zigbee.transmit(&b);
    combine_at(&mut air, &other, gap);
    let first = zigbee.receive(&air).expect("first lost");
    assert_eq!(first.psdu, a.psdu());
    let second = zigbee.receive(&air[gap..]).expect("second lost");
    assert_eq!(second.psdu, b.psdu());
}

#[test]
fn capture_effect_with_power_advantage() {
    // A 16 dB stronger WazaBee injection punches through a weak legitimate
    // frame — the capture effect that makes CSMA-less injection viable.
    let zigbee = Dot154Modem::new(8);
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
    let strong = frame(&[0x57; 8]);
    let weak = frame(&[0x77; 8]);
    let mut air: Vec<Iq> = tx.transmit(&strong);
    let weak_air: Vec<Iq> = zigbee
        .transmit(&weak)
        .into_iter()
        .map(|s| s.scale(0.15))
        .collect();
    combine_at(&mut air, &weak_air, 64);
    let rx = zigbee.receive(&air).expect("strong frame lost in capture");
    assert_eq!(rx.psdu, strong.psdu());
    assert!(rx.fcs_ok());
}

#[test]
fn tail_collision_corrupts_but_preamble_survives() {
    // A slightly stronger late collider stomps only the payload: sync
    // succeeds, FCS fails —
    // the "received with integrity corruption" class of Table III.
    let zigbee = Dot154Modem::new(8);
    let victim = frame(&[0x11; 30]);
    let mut air = zigbee.transmit(&victim);
    let interferer: Vec<Iq> = zigbee
        .transmit(&frame(&[0x22; 30]))
        .into_iter()
        .map(|s| s.scale(1.15))
        .collect();
    // Land the collider on the victim's second half.
    let offset = air.len() * 3 / 5;
    let chunk = air.len() / 3;
    combine_at(&mut air, &interferer[..chunk], offset);
    match zigbee.receive(&air) {
        Some(r) => assert!(
            !r.fcs_ok() || r.psdu != victim.psdu(),
            "tail collision harmless?"
        ),
        None => panic!("preamble region was clean; sync should have held"),
    }
}
