//! The countermeasure closing the loop: the multi-protocol IDS of
//! `wazabee-ids` detecting the actual attacks of this reproduction.

use wazabee::scenario_a::{craft_manufacturer_data, ScenarioA};
use wazabee::WazaBeeTx;
use wazabee_ble::adv::BleAddress;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_chips::Smartphone;
use wazabee_dot154::{fcs::append_fcs, Dot154Channel, Dot154Modem, MacFrame, Ppdu};
use wazabee_dsp::Iq;
use wazabee_ids::{Alert, ChannelMonitor, MonitorConfig};

fn pad(samples: Vec<Iq>) -> Vec<Iq> {
    let mut buf = vec![Iq::ZERO; 600];
    buf.extend(samples);
    buf.extend(vec![Iq::ZERO; 600]);
    buf
}

#[test]
fn scenario_a_aux_packet_trips_the_cross_protocol_detector() {
    // Build the real Scenario A emission: an AUX_ADV_IND whose whitened
    // payload embeds a Zigbee frame.
    let target = Dot154Channel::new(14).unwrap();
    let phone = Smartphone::new(BleAddress::new([9, 9, 9, 9, 9, 9]), 8);
    let aa = phone.access_address();
    let mut scenario = ScenarioA::new(phone, target, 8).unwrap();
    let forged = MacFrame::data(0x1234, 0x0063, 0x0042, 1, vec![0xBE, 0xEF]);
    scenario.arm(&Ppdu::new(forged.to_psdu()).unwrap()).unwrap();

    // Drive advertising events until one lands on the monitored frequency.
    let link = wazabee_radio::Link::new(wazabee_radio::LinkConfig::ideal(), 1);
    let mut aux_on_target = None;
    // Access the waveform through the chips API: re-run the phone directly.
    let mut phone2 = Smartphone::new(BleAddress::new([9, 9, 9, 9, 9, 9]), 8);
    phone2
        .set_manufacturer_data(
            craft_manufacturer_data(
                &Ppdu::new(forged.to_psdu()).unwrap(),
                scenario.target_ble_channel(),
            )
            .unwrap(),
        )
        .unwrap();
    for _ in 0..300 {
        let ev = phone2.advertising_event().unwrap();
        if ev.aux_channel == scenario.target_ble_channel() {
            aux_on_target = Some(ev.aux_samples);
            break;
        }
    }
    let aux = aux_on_target.expect("CSA#2 never hit the target channel");
    let _ = link;

    // The monitor sits on the shared frequency; it knows Zigbee is deployed
    // there (whitelisted), so a plain Zigbee frame would be fine — but the
    // double-valid emission is not.
    let mut monitor = ChannelMonitor::new(
        2420,
        8,
        MonitorConfig {
            dot154_whitelisted: true,
            ..MonitorConfig::default()
        },
    );
    monitor.classifier_mut().learn_access_address(aa);
    let alerts = monitor.observe(&pad(aux));
    let cross: Vec<_> = alerts
        .iter()
        .filter_map(|a| match a {
            Alert::CrossProtocolFrame { psdu, .. } => Some(psdu),
            _ => None,
        })
        .collect();
    assert!(!cross.is_empty(), "injection not detected: {alerts:?}");
    assert_eq!(
        cross[0],
        &forged.to_psdu(),
        "wrong embedded frame recovered"
    );
}

#[test]
fn raw_wazabee_tx_is_flagged_as_unexpected_dot154() {
    // A diverted nRF52832 transmitting raw (no BLE framing at all) on a
    // frequency with no legitimate Zigbee deployment.
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
    let ppdu = Ppdu::new(append_fcs(&[0x42; 6])).unwrap();
    let mut monitor = ChannelMonitor::new(2410, 8, MonitorConfig::default());
    let alerts = monitor.observe(&pad(tx.transmit(&ppdu)));
    assert!(
        alerts
            .iter()
            .any(|a| matches!(a, Alert::UnexpectedDot154 { psdu, .. } if *psdu == ppdu.psdu())),
        "{alerts:?}"
    );
}

#[test]
fn legitimate_zigbee_on_deployed_channel_stays_quiet() {
    let zigbee = Dot154Modem::new(8);
    let ppdu = Ppdu::new(append_fcs(&[1, 2, 3])).unwrap();
    let mut monitor = ChannelMonitor::new(
        2420,
        8,
        MonitorConfig {
            dot154_whitelisted: true,
            ..MonitorConfig::default()
        },
    );
    assert!(monitor.observe(&pad(zigbee.transmit(&ppdu))).is_empty());
}

#[test]
fn scenario_b_scan_storm_raises_an_anomaly() {
    // The tracker's active scan fires beacon requests in a rapid burst —
    // far above the learned baseline of a quiet channel.
    let mut monitor = ChannelMonitor::new(
        2420,
        8,
        MonitorConfig {
            dot154_whitelisted: true,
            ..MonitorConfig::default()
        },
    );
    let zigbee = Dot154Modem::new(8);
    // Quiet baseline.
    for _ in 0..4 {
        assert!(monitor.observe(&vec![Iq::ZERO; 20_000]).is_empty());
    }
    // The storm window: eight beacon requests back to back.
    let mut storm = Vec::new();
    for seq in 0..8 {
        let ppdu = Ppdu::new(MacFrame::beacon_request(seq).to_psdu()).unwrap();
        storm.extend(pad(zigbee.transmit(&ppdu)));
    }
    let alerts = monitor.observe(&storm);
    assert!(
        alerts
            .iter()
            .any(|a| matches!(a, Alert::TrafficAnomaly { .. })),
        "{alerts:?}"
    );
}
