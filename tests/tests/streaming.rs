//! Streaming reception: the re-arming receiver must deliver every frame in a
//! multi-frame capture, survive a decoy sync hit without abandoning the rest
//! of the buffer, and produce the exact same result sequence no matter how
//! the sample stream is chopped into chunks.

use proptest::prelude::*;
use wazabee::{WazaBeeError, WazaBeeRx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::msk::frame_chips_to_msk;
use wazabee_dot154::pn::pn_sequence;
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu, ReceivedPpdu};
use wazabee_dsp::Iq;
use wazabee_radio::combine_at;

const SPS: usize = 8;

fn sniffer() -> WazaBeeRx<BleModem> {
    WazaBeeRx::new(BleModem::new(BlePhy::Le2M, SPS)).expect("LE 2M is the attack PHY")
}

/// Warmup bits plus the sync pattern followed by a non-SFD symbol: the
/// correlator fires, the SFD check rejects the attempt. This is the hit
/// that used to swallow everything behind it.
fn decoy_burst() -> Vec<Iq> {
    let ble = BleModem::new(BlePhy::Le2M, SPS);
    let mut bits: Vec<u8> = (0..wazabee::tx::TX_WARMUP_BITS)
        .map(|k| (k % 2) as u8)
        .collect();
    let mut chips = pn_sequence(0).to_vec();
    chips.extend(pn_sequence(5));
    bits.extend(frame_chips_to_msk(&chips, 0));
    ble.transmit_raw(&bits)
}

fn stream_in_chunks(
    rx: &WazaBeeRx<BleModem>,
    buf: &[Iq],
    chunk: usize,
) -> Vec<Result<ReceivedPpdu, WazaBeeError>> {
    let mut stream = rx.stream();
    let mut results = Vec::new();
    for piece in buf.chunks(chunk) {
        results.extend(stream.push(piece));
    }
    results.extend(stream.finish());
    results
}

#[test]
fn two_back_to_back_frames_with_random_gap_both_decode() {
    use rand::{Rng, SeedableRng};
    let zigbee = Dot154Modem::new(SPS);
    let rx = sniffer();
    let a = Ppdu::new(append_fcs(&[0x0A, 1, 2, 3])).unwrap();
    let b = Ppdu::new(append_fcs(&[0x0B, 9, 8, 7, 6])).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5EED);
    for _ in 0..4 {
        let mut air = zigbee.transmit(&a);
        let gap = air.len() + rng.gen_range(64usize..2048);
        combine_at(&mut air, &zigbee.transmit(&b), gap);
        let frames: Vec<_> = stream_in_chunks(&rx, &air, 4096)
            .into_iter()
            .filter_map(Result::ok)
            .collect();
        assert_eq!(frames.len(), 2, "lost a frame at gap {gap}");
        assert_eq!(frames[0].psdu, a.psdu());
        assert_eq!(frames[1].psdu, b.psdu());
        assert!(frames.iter().all(ReceivedPpdu::fcs_ok));
    }
}

#[test]
fn decoy_sync_hit_no_longer_swallows_the_genuine_frame() {
    let zigbee = Dot154Modem::new(SPS);
    let rx = sniffer();
    let genuine = Ppdu::new(append_fcs(&[0xCA, 0xFE, 0x57, 0xEA])).unwrap();
    let mut capture = decoy_burst();
    capture.extend(vec![Iq::ZERO; 800]);
    capture.extend(zigbee.transmit(&genuine));

    let results = stream_in_chunks(&rx, &capture, 4096);
    assert!(
        matches!(results.first(), Some(Err(_))),
        "the decoy should commit a typed failure first, got {:?}",
        results.first()
    );
    let frame = results
        .iter()
        .find_map(|r| r.as_ref().ok())
        .expect("genuine frame behind the decoy was swallowed");
    assert_eq!(frame.psdu, genuine.psdu());
    assert!(frame.fcs_ok());

    // The one-shot wrapper rides the same engine, so it recovers too.
    let one_shot = rx.try_receive(&capture).expect("try_receive gave up");
    assert_eq!(one_shot.psdu, genuine.psdu());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A sync hit that fails right as the retained buffers cross the trim
    /// low-water mark must still re-arm exactly one bit past the failure:
    /// the lead-in is sized so the stream trims its front mid-capture under
    /// small chunk sizes (and not at all under the whole-buffer reference),
    /// yet the committed sequence — typed failure first, then the genuine
    /// frame behind it — is byte-identical either way.
    #[test]
    fn failed_hit_straddling_trim_boundary_rearms(
        lead_in_bits in 4_000usize..6_000,
        gap in 64usize..800,
        chunk in 1usize..9_000,
    ) {
        let zigbee = Dot154Modem::new(SPS);
        let rx = sniffer();
        let genuine = Ppdu::new(append_fcs(&[0x7B, 0x00, 0x55])).unwrap();
        let mut capture = vec![Iq::ZERO; lead_in_bits * SPS];
        capture.extend(decoy_burst());
        capture.extend(vec![Iq::ZERO; gap]);
        capture.extend(zigbee.transmit(&genuine));

        let reference = stream_in_chunks(&rx, &capture, capture.len());
        let chunked = stream_in_chunks(&rx, &capture, chunk);
        prop_assert_eq!(&chunked, &reference, "chunk size {} diverged across the trim boundary", chunk);
        prop_assert!(
            matches!(chunked.first(), Some(Err(_))),
            "the straddling hit must commit a typed failure first, got {:?}",
            chunked.first()
        );
        let frames: Vec<_> = chunked.iter().filter_map(|r| r.as_ref().ok()).collect();
        prop_assert_eq!(frames.len(), 1, "genuine frame behind the trim boundary was lost");
        prop_assert_eq!(&frames[0].psdu, genuine.psdu());
        prop_assert!(frames[0].fcs_ok());
    }

    /// The committed result sequence is a function of the sample stream, not
    /// of how the front-end chops it: any chunk size must reproduce the
    /// whole-buffer-at-once sequence exactly, failures included.
    #[test]
    fn chunk_size_does_not_change_the_result_sequence(chunk in 1usize..60_000) {
        let zigbee = Dot154Modem::new(SPS);
        let rx = sniffer();
        let mut capture = decoy_burst();
        for k in 0..2u8 {
            capture.extend(vec![Iq::ZERO; 700 + 300 * usize::from(k)]);
            let ppdu = Ppdu::new(append_fcs(&[0x10 | k, 0xAB, 0xCD])).unwrap();
            capture.extend(zigbee.transmit(&ppdu));
        }
        let chunk = chunk.min(capture.len());
        let reference = stream_in_chunks(&rx, &capture, capture.len());
        let chunked = stream_in_chunks(&rx, &capture, chunk);
        prop_assert_eq!(&chunked, &reference, "chunk size {} diverged", chunk);
    }
}
