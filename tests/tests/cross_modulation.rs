//! Integration tests of the paper's core claim: the waveform compatibility
//! of BLE GFSK and 802.15.4 O-QPSK, exercised across crates and across all
//! sixteen Zigbee channels over the simulated medium.

use wazabee::{WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::fcs::append_fcs;
use wazabee_dot154::{Dot154Channel, Dot154Modem, MacFrame, Ppdu};
use wazabee_esb::EsbModem;
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn ppdu(payload: &[u8]) -> Ppdu {
    Ppdu::new(append_fcs(payload)).expect("fits")
}

#[test]
fn ble_tx_to_zigbee_rx_on_every_channel() {
    let sps = 8;
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).unwrap();
    let zigbee = Dot154Modem::new(sps);
    for channel in Dot154Channel::all() {
        let mut link = Link::new(LinkConfig::office_3m(), u64::from(channel.number()));
        let p = ppdu(&[channel.number(), 0xAA, 0x55]);
        let air = tx.transmit(&p);
        let mhz = channel.center_mhz();
        let heard = link.deliver(&RfFrame::new(mhz, air, zigbee.sample_rate()), mhz);
        let rx = zigbee
            .receive(&heard)
            .unwrap_or_else(|| panic!("lost on {channel}"));
        assert_eq!(rx.psdu, p.psdu(), "mismatch on {channel}");
        assert!(rx.fcs_ok(), "FCS broken on {channel}");
    }
}

#[test]
fn zigbee_tx_to_ble_rx_on_every_channel() {
    let sps = 8;
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).unwrap();
    let zigbee = Dot154Modem::new(sps);
    for channel in Dot154Channel::all() {
        let mut link = Link::new(LinkConfig::office_3m(), 100 + u64::from(channel.number()));
        let p = ppdu(&[channel.number(), 1, 2, 3, 4]);
        let air = zigbee.transmit(&p);
        let mhz = channel.center_mhz();
        let heard = link.deliver(&RfFrame::new(mhz, air, zigbee.sample_rate()), mhz);
        let got = rx
            .receive(&heard)
            .unwrap_or_else(|| panic!("lost on {channel}"));
        assert_eq!(got.psdu, p.psdu(), "mismatch on {channel}");
        assert!(got.fcs_ok());
    }
}

#[test]
fn ble_generated_waveform_passes_a_coherent_oqpsk_receiver() {
    // The strongest cross-validation available: the attack waveform decoded
    // by chip-domain matched filtering with carrier recovery, not by another
    // FM discriminator.
    let sps = 8;
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).unwrap();
    let zigbee = Dot154Modem::new(sps);
    let frame = MacFrame::data(0x1234, 0x0063, 0x0042, 3, b"coherent".to_vec());
    let p = Ppdu::new(frame.to_psdu()).unwrap();
    let mut link = Link::new(LinkConfig::ideal(), 5);
    let heard = link.deliver(
        &RfFrame::new(2420, tx.transmit(&p), zigbee.sample_rate()),
        2420,
    );
    let rx = zigbee
        .receive_coherent(&heard)
        .expect("coherent receiver lost the frame");
    assert_eq!(rx.psdu, p.psdu());
    assert!(rx.fcs_ok());
}

#[test]
fn esb_radio_is_a_drop_in_substitute() {
    // Scenario B's premise, end to end: the nRF51822's ESB modem runs both
    // primitives against genuine 802.15.4 gear.
    let sps = 8;
    let tx = WazaBeeTx::new(EsbModem::new(sps)).unwrap();
    let rx = WazaBeeRx::new(EsbModem::new(sps)).unwrap();
    let zigbee = Dot154Modem::new(sps);
    let mut link = Link::new(LinkConfig::office_3m(), 77);
    let p = ppdu(&[0xE5, 0xB0]);
    let heard = link.deliver(
        &RfFrame::new(2420, tx.transmit(&p), zigbee.sample_rate()),
        2420,
    );
    assert!(zigbee.receive(&heard).map(|r| r.fcs_ok()).unwrap_or(false));
    let heard = link.deliver(
        &RfFrame::new(2420, zigbee.transmit(&p), zigbee.sample_rate()),
        2420,
    );
    assert!(rx.receive(&heard).map(|r| r.fcs_ok()).unwrap_or(false));
}

#[test]
fn off_channel_transmissions_are_not_received() {
    // A receiver 10 MHz away must hear nothing intelligible.
    let sps = 8;
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).unwrap();
    let zigbee = Dot154Modem::new(sps);
    let mut link = Link::new(LinkConfig::office_3m(), 13);
    let p = ppdu(&[9; 10]);
    let heard = link.deliver(
        &RfFrame::new(2420, tx.transmit(&p), zigbee.sample_rate()),
        2430,
    );
    match zigbee.receive(&heard) {
        None => {}
        Some(r) => assert!(
            !r.fcs_ok() || r.psdu != p.psdu(),
            "decoded 10 MHz off channel"
        ),
    }
}

#[test]
fn forced_whitening_chip_still_attacks() {
    // A chip that cannot disable whitening pre-inverts it (§IV-D req. 3).
    let sps = 8;
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).unwrap();
    let zigbee = Dot154Modem::new(sps);
    let p = ppdu(&[0x57, 0x48, 0x49, 0x54]);
    let ble_ch = wazabee_ble::BleChannel::new(8).unwrap();
    let air = tx.transmit_via_forced_whitening(&p, ble_ch);
    let mut link = Link::new(LinkConfig::office_3m(), 21);
    let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
    let rx = zigbee.receive(&heard).expect("lost");
    assert_eq!(rx.psdu, p.psdu());
    assert!(rx.fcs_ok());
}

#[test]
fn back_to_back_frames_both_found() {
    // Two frames in one capture buffer: the receiver finds the first; after
    // trimming, the second is recoverable too.
    let sps = 8;
    let zigbee = Dot154Modem::new(sps);
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).unwrap();
    let p1 = ppdu(&[1, 1, 1]);
    let p2 = ppdu(&[2, 2, 2]);
    let mut air = zigbee.transmit(&p1);
    let gap = vec![wazabee_dsp::Iq::ZERO; 4 * sps];
    air.extend(gap);
    air.extend(zigbee.transmit(&p2));
    let first = rx.receive(&air).expect("first frame lost");
    assert_eq!(first.psdu, p1.psdu());
    // Skip past the first frame's samples and look again.
    let first_len = zigbee.transmit(&p1).len();
    let second = rx.receive(&air[first_len..]).expect("second frame lost");
    assert_eq!(second.psdu, p2.psdu());
}
