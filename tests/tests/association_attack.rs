//! Scenario B against a network whose sensor joined through the real MAC
//! association procedure (not a factory-configured address): the attacker
//! has no prior knowledge, yet discovery, eavesdropping and the DoS all
//! still work — and the attacker can even learn the address *from the
//! association handshake itself*.

use wazabee::TrackerAttack;
use wazabee_dot154::Dot154Channel;
use wazabee_radio::{Instant, Link, LinkConfig};
use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode, ZigbeeNetwork};

fn dynamic_network() -> (ZigbeeNetwork, usize) {
    let mut net = ZigbeeNetwork::new();
    let ch14 = Dot154Channel::new(14).unwrap();
    net.add_node(XbeeNode::new(
        NodeConfig {
            pan: 0x1234,
            short_addr: 0x0042,
            channel: ch14,
        },
        NodeRole::Coordinator,
    ));
    let sensor = net.add_node(XbeeNode::new_unjoined_sensor(ch14, 2000));
    (net, sensor)
}

#[test]
fn attack_works_against_a_dynamically_joined_sensor() {
    let (mut net, sensor_idx) = dynamic_network();
    // Let the sensor join and produce some traffic.
    net.run_until(Instant(0).plus_ms(4_500));
    assert!(net.node(sensor_idx).is_joined(), "sensor failed to join");
    let sensor_addr = net.node(sensor_idx).config.short_addr;

    let mut attack = TrackerAttack::new(8).unwrap();
    let mut link = Link::new(LinkConfig::office_3m(), 41);
    let report = attack.execute(&mut net, &mut link);
    assert!(report.complete(), "attack incomplete: {report:?}");
    assert_eq!(report.sensor, Some(sensor_addr));
    assert_eq!(net.node(sensor_idx).config.channel, attack.dos_channel);
}

#[test]
fn coordinator_assigned_addresses_appear_in_sniffed_traffic() {
    let (mut net, sensor_idx) = dynamic_network();
    net.run_until(Instant(0).plus_ms(8_500));
    let assigned = net.node(sensor_idx).config.short_addr;
    assert!(assigned >= 0x0100, "coordinator pool starts at 0x0100");
    // The data frames on the air carry the assigned address as source.
    let mut seen = false;
    for record in net.log() {
        if let Some(frame) = wazabee_dot154::MacFrame::from_psdu(&record.psdu) {
            if frame.src == wazabee_dot154::mac::Address::Short(assigned)
                && frame.frame_type == wazabee_dot154::mac::FrameType::Data
            {
                seen = true;
            }
        }
    }
    assert!(seen, "no data frame from the assigned address on the air");
}

#[test]
fn dos_forces_rejoin_scanning_behaviour() {
    // After the forged channel change, the exiled sensor keeps emitting its
    // readings into the void — the DoS the paper demonstrates. (Our node
    // model does not detect ack loss; a rejoin heuristic would be a
    // countermeasure, which is exactly the paper's point about monitoring.)
    let (mut net, sensor_idx) = dynamic_network();
    net.run_until(Instant(0).plus_ms(4_500));
    let mut attack = TrackerAttack::new(8).unwrap();
    let mut link = Link::new(LinkConfig::office_3m(), 43);
    let pan = attack.active_scan(&mut net, &mut link).unwrap();
    let sensor_addr = net.node(sensor_idx).config.short_addr;
    assert!(attack.inject_remote_at(&mut net, &mut link, pan, sensor_addr));
    let display_before = net.coordinator().readings().len();
    net.run_until(net.now().plus_ms(8_000));
    assert_eq!(
        net.coordinator().readings().len(),
        display_before,
        "exiled sensor still reaching the coordinator"
    );
    // Its frames exist — on the wrong channel.
    let exiled_traffic = net
        .log()
        .iter()
        .filter(|r| r.channel == attack.dos_channel && r.source == Some(sensor_idx))
        .count();
    assert!(
        exiled_traffic > 0,
        "sensor went silent instead of being exiled"
    );
}
