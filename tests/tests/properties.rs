//! Cross-crate property tests: invariants of the full attack pipeline under
//! randomly generated inputs.

use proptest::prelude::*;
use wazabee::{encode_ppdu_msk, prewhiten_bits, WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleChannel, BleModem, BlePhy, Whitener};
use wazabee_dot154::msk::{frame_chips_to_msk, msk_to_chips};
use wazabee_dot154::{Dot154Modem, MacFrame, Ppdu};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random MAC frame survives the diverted-BLE → genuine-Zigbee path
    /// bit-for-bit on a clean channel.
    #[test]
    fn prop_ble_tx_zigbee_rx_lossless(
        pan in any::<u16>(),
        src in any::<u16>(),
        dest in any::<u16>(),
        seq in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let frame = MacFrame::data(pan, src, dest, seq, payload);
        let ppdu = Ppdu::new(frame.to_psdu()).unwrap();
        let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let zigbee = Dot154Modem::new(8);
        let rx = zigbee.receive(&tx.transmit(&ppdu)).expect("frame lost");
        prop_assert!(rx.fcs_ok());
        prop_assert_eq!(rx.psdu, ppdu.psdu().to_vec());
    }

    /// Any random MAC frame survives the genuine-Zigbee → diverted-BLE path.
    #[test]
    fn prop_zigbee_tx_ble_rx_lossless(
        payload in proptest::collection::vec(any::<u8>(), 0..40),
        seq in any::<u8>(),
    ) {
        let frame = MacFrame::data(0x1234, 0x0063, 0x0042, seq, payload);
        let ppdu = Ppdu::new(frame.to_psdu()).unwrap();
        let zigbee = Dot154Modem::new(8);
        let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let got = rx.receive(&zigbee.transmit(&ppdu)).expect("frame lost");
        prop_assert!(got.fcs_ok());
        prop_assert_eq!(got.psdu, ppdu.psdu().to_vec());
    }

    /// The TX encoding is invertible: decoding the MSK stream recovers the
    /// exact chip sequence of the PPDU.
    #[test]
    fn prop_encode_is_invertible(
        payload in proptest::collection::vec(any::<u8>(), 0..60),
    ) {
        let ppdu = Ppdu::new(wazabee_dot154::fcs::append_fcs(&payload)).unwrap();
        let bits = encode_ppdu_msk(&ppdu);
        let body = &bits[wazabee::tx::TX_WARMUP_BITS..];
        let chips = msk_to_chips(&body[1..], body_first_chip(body), true);
        let mut expect = ppdu.to_chips();
        expect.remove(0);
        prop_assert_eq!(chips, expect);
    }

    /// Pre-whitening then hardware whitening is the identity on every
    /// channel — the §IV-D requirement-3 workaround.
    #[test]
    fn prop_prewhitening_cancels_hardware_whitening(
        bits in proptest::collection::vec(0u8..=1, 1..500),
        channel in 0u8..40,
    ) {
        let ch = BleChannel::new(channel).unwrap();
        let staged = prewhiten_bits(&bits, ch);
        let on_air = Whitener::new(ch).whiten_bits(&staged);
        prop_assert_eq!(on_air, bits);
    }

    /// The frame-level chip↔MSK conversion round-trips for arbitrary chip
    /// streams and both virtual previous chips.
    #[test]
    fn prop_frame_msk_round_trip(
        chips in proptest::collection::vec(0u8..=1, 1..300),
        prev in 0u8..=1,
    ) {
        let msk = frame_chips_to_msk(&chips, prev);
        prop_assert_eq!(msk.len(), chips.len());
        let back = msk_to_chips(&msk, prev, false);
        prop_assert_eq!(back, chips);
    }
}

/// Recovers chip 0 from the first MSK bit of a frame stream (the encoder
/// uses virtual previous chip 0 at an even boundary: `m0 = 0 ^ c0 ^ 0`).
fn body_first_chip(body: &[u8]) -> u8 {
    body[0]
}

#[test]
fn warmup_bits_are_alternating() {
    let ppdu = Ppdu::new(wazabee_dot154::fcs::append_fcs(&[1])).unwrap();
    let bits = encode_ppdu_msk(&ppdu);
    for (k, &b) in bits[..wazabee::tx::TX_WARMUP_BITS].iter().enumerate() {
        assert_eq!(b, (k % 2) as u8);
    }
}
