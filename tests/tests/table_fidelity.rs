//! Fidelity tests: the regenerated tables must reproduce the *shape* of the
//! paper's results — who wins, where the dips fall — without requiring the
//! exact testbed numbers.

use wazabee_bench::table3::{run_primitive, ChannelResult, Primitive, Table3Config};
use wazabee_chips::{cc1352r1, nrf52832};

fn cfg() -> Table3Config {
    Table3Config {
        frames: 25,
        ..Table3Config::default()
    }
}

fn pct_valid(results: &[ChannelResult]) -> f64 {
    100.0 * results.iter().map(|r| r.valid_ratio()).sum::<f64>() / results.len() as f64
}

fn by_channel(results: &[ChannelResult], n: u8) -> ChannelResult {
    results
        .iter()
        .find(|r| r.channel.number() == n)
        .copied()
        .expect("channel present")
}

#[test]
fn reception_averages_match_paper_band() {
    // Paper: 98.625% (nRF52832), 99.375% (CC1352-R1). We require ≥ 90% with
    // the CC1352-R1 at least as clean as the nRF52832 overall.
    let rx_nrf = run_primitive(&nrf52832(), Primitive::Reception, &cfg());
    let rx_cc = run_primitive(&cc1352r1(), Primitive::Reception, &cfg());
    let nrf = pct_valid(&rx_nrf);
    let cc = pct_valid(&rx_cc);
    assert!(nrf >= 90.0, "nRF52832 RX average {nrf:.1}% too low");
    assert!(cc >= 90.0, "CC1352-R1 RX average {cc:.1}% too low");
    assert!(
        cc + 2.0 >= nrf,
        "CC1352-R1 ({cc:.1}%) should not trail nRF52832 ({nrf:.1}%)"
    );
}

#[test]
fn transmission_averages_match_paper_band() {
    // Paper: 97.5% (nRF52832), 99.438% (CC1352-R1).
    let tx_nrf = run_primitive(&nrf52832(), Primitive::Transmission, &cfg());
    let tx_cc = run_primitive(&cc1352r1(), Primitive::Transmission, &cfg());
    assert!(pct_valid(&tx_nrf) >= 90.0);
    assert!(pct_valid(&tx_cc) >= 90.0);
}

#[test]
fn wifi_free_channels_are_near_perfect() {
    // Channels 11-15, 20, 25-26 are clear of WiFi 6 and 11 in our model.
    let rx = run_primitive(&nrf52832(), Primitive::Reception, &cfg());
    for n in [11u8, 12, 13, 14, 15, 20, 25, 26] {
        let r = by_channel(&rx, n);
        assert!(
            r.valid_ratio() >= 0.92,
            "clean channel {n} at {:.0}%",
            100.0 * r.valid_ratio()
        );
    }
}

#[test]
fn dips_fall_where_the_paper_says() {
    // Aggregated over both chips, the WiFi-overlapped channels (17, 18 for
    // WiFi 6; 21-23 for WiFi 11) must show strictly more trouble than the
    // clean channels.
    let big = Table3Config {
        frames: 40,
        ..Table3Config::default()
    };
    let mut dip_loss = 0usize;
    let mut clean_loss = 0usize;
    for chip in [nrf52832(), cc1352r1()] {
        for prim in [Primitive::Reception, Primitive::Transmission] {
            let results = run_primitive(&chip, prim, &big);
            for n in [17u8, 18, 21, 22, 23] {
                let r = by_channel(&results, n);
                dip_loss += r.corrupted + r.lost;
            }
            for n in [11u8, 13, 14, 20, 25] {
                let r = by_channel(&results, n);
                clean_loss += r.corrupted + r.lost;
            }
        }
    }
    assert!(
        dip_loss > clean_loss,
        "dip channels ({dip_loss} losses) not worse than clean ({clean_loss})"
    );
    assert!(
        dip_loss >= 3,
        "WiFi interference barely visible: {dip_loss} losses"
    );
}

#[test]
fn disabling_wifi_removes_the_dips() {
    let no_wifi = Table3Config {
        frames: 25,
        wifi: false,
        snr_db: 12.0,
        ..Table3Config::default()
    };
    let rx = run_primitive(&nrf52832(), Primitive::Reception, &no_wifi);
    // Rare correlator tail events (a false sync inside the noise lead-in)
    // may still cost the odd frame — as they do on real hardware — but the
    // systematic WiFi dips must be gone.
    let mut total_bad = 0usize;
    for r in &rx {
        assert!(
            r.valid >= 24,
            "channel {} at {}/25 without WiFi at 12 dB",
            r.channel,
            r.valid
        );
        total_bad += r.corrupted + r.lost;
    }
    assert!(
        total_bad <= 3,
        "{total_bad} bad frames across the band without WiFi"
    );
}
