//! Determinism of the spectrum simulator under the parallel sweep driver:
//! the committed event log *and* the exported `timeseries.jsonl` of a
//! simulation run must be byte-identical whether its sweep cell executes on
//! one worker or four (`WAZABEE_THREADS`-style scheduling), and whatever IQ
//! chunk size the receivers feed the streaming decoder — now that the
//! receive chain runs the planar `f32` SIMD kernels, these witnesses also
//! pin that the blocked kernels have no data-dependent evaluation order.

use proptest::prelude::*;
use wazabee_bench::sweep::par_map_with;
use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::Dot154Channel;
use wazabee_radio::Instant;
use wazabee_sim::{JammerConfig, SimConfig, SpectrumSim};
use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode, XbeePayload};

const PAN: u16 = 0x1234;
const COORD: u16 = 0x0042;

fn node(addr: u16, role: NodeRole) -> XbeeNode {
    XbeeNode::new(
        NodeConfig {
            pan: PAN,
            short_addr: addr,
            channel: Dot154Channel::new(14).unwrap(),
        },
        role,
    )
}

/// One sweep cell: a contended office-grade run (noise, CFO, timing offset,
/// a reactive jammer and a WazaBee injector) whose committed event log and
/// exported timeline JSONL are the determinism witnesses.
fn run_cell(seed: u64, iq_chunk: usize) -> (String, String) {
    let ch = Dot154Channel::new(14).unwrap();
    let mut cfg = SimConfig::office();
    cfg.seed = seed;
    cfg.iq_chunk = iq_chunk.max(1);
    let mut sim = SpectrumSim::new(cfg);
    sim.enable_timeline(5_000);
    sim.add_zigbee(node(COORD, NodeRole::Coordinator));
    sim.add_zigbee(node(0x0063, NodeRole::Sensor { interval_ms: 40 }));
    sim.add_zigbee(node(0x0064, NodeRole::Sensor { interval_ms: 40 }));
    sim.add_reactive_jammer(
        ch,
        JammerConfig {
            trigger_probability: 0.4,
            ..JammerConfig::default()
        },
    );
    let attacker = sim.add_wazabee_injector(ch, 1.0);
    let forged = MacFrame::data(
        PAN,
        0x0063,
        COORD,
        99,
        XbeePayload::reading(7777).to_bytes(),
    );
    sim.inject_at(attacker, Instant(41_000), forged);
    sim.run_until(Instant(0).plus_ms(130));
    (sim.event_log().join("\n"), sim.timeline_jsonl())
}

#[test]
fn committed_event_log_is_identical_across_worker_counts() {
    let cells: Vec<(u64, usize)> = (0..6u64).map(|k| (0xA11CE + 77 * k, 4096)).collect();
    let serial = par_map_with(Some(1), cells.clone(), |(s, c)| run_cell(s, c));
    let four = par_map_with(Some(4), cells, |(s, c)| run_cell(s, c));
    assert!(serial
        .iter()
        .all(|(log, jsonl)| !log.is_empty() && !jsonl.is_empty()));
    assert_eq!(serial, four, "artifacts diverged across worker counts");
}

#[test]
fn extreme_chunk_sizes_commit_identical_artifacts() {
    // One-sample chunks force the planar engine through its diff-cache
    // continuity path on every push; huge chunks take the single-pass path.
    // Both must commit the byte-identical event log and timeline JSONL.
    let reference = run_cell(0xBEE5, 4096);
    assert!(!reference.0.is_empty() && !reference.1.is_empty());
    for chunk in [1usize, 2, 7, 63, 1_000_000] {
        assert_eq!(run_cell(0xBEE5, chunk), reference, "chunk {chunk} diverged");
    }
}

/// One multi-channel cell through the channel-sharded engine: four PANs on
/// four RF channels, each with a coordinator, a relay router and sensors
/// (odd sensors report via the router), plus a WazaBee injector on the
/// first channel. `threads` drives the shard workers directly.
fn run_sharded_cell(seed: u64, threads: usize) -> (String, String) {
    let mut cfg = SimConfig::office();
    cfg.seed = seed;
    cfg.threads = Some(threads);
    let mut sim = SpectrumSim::new(cfg);
    sim.enable_timeline(5_000);
    let mut next_addr = 0x0100u16;
    for ci in 0..4u8 {
        let ch = Dot154Channel::new(11 + ci).unwrap();
        let pan = 0x1200 + u16::from(ci);
        let on = |addr: u16, role: NodeRole| {
            XbeeNode::new(
                NodeConfig {
                    pan,
                    short_addr: addr,
                    channel: ch,
                },
                role,
            )
        };
        sim.add_zigbee(on(COORD, NodeRole::Coordinator));
        sim.add_zigbee(on(0x0080, NodeRole::Router { forward_to: COORD }));
        for s in 0..3u16 {
            let addr = next_addr;
            next_addr += 1;
            let interval = 37 + u64::from(addr) % 17;
            let node = on(
                addr,
                NodeRole::Sensor {
                    interval_ms: interval,
                },
            );
            sim.add_zigbee(if s % 2 == 1 {
                node.with_report_to(0x0080)
            } else {
                node
            });
        }
    }
    let ch0 = Dot154Channel::new(11).unwrap();
    let attacker = sim.add_wazabee_injector(ch0, 1.0);
    let forged = MacFrame::data(
        0x1200,
        0x0100,
        COORD,
        99,
        XbeePayload::reading(7777).to_bytes(),
    );
    sim.inject_at(attacker, Instant(41_000), forged);
    sim.run_until(Instant(0).plus_ms(130));
    (sim.event_log().join("\n"), sim.timeline_jsonl())
}

#[test]
fn sharded_multichannel_cell_is_identical_across_thread_counts() {
    for seed in [0xBEE5u64, 0x51AB] {
        let one = run_sharded_cell(seed, 1);
        assert!(!one.0.is_empty() && !one.1.is_empty());
        for threads in [2usize, 4] {
            let many = run_sharded_cell(seed, threads);
            assert_eq!(
                one, many,
                "sharded artifacts diverged between 1 and {threads} shard workers"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, any chunk size: one worker and four workers commit the
    /// same event log and the same timeline JSONL, and the chunk size never
    /// leaks into either artifact.
    #[test]
    fn event_log_is_invariant_to_chunking_and_threads(
        seed in 0u64..1_000,
        chunk in 1usize..20_000,
    ) {
        let cells = vec![(seed, chunk), (seed, 4096)];
        let serial = par_map_with(Some(1), cells.clone(), |(s, c)| run_cell(s, c));
        let four = par_map_with(Some(4), cells, |(s, c)| run_cell(s, c));
        prop_assert_eq!(&serial[0], &serial[1], "chunk size changed the outcome");
        prop_assert_eq!(serial, four, "worker count changed the outcome");
    }
}
