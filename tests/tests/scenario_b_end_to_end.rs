//! Scenario B end to end: the four-step tracker attack under realistic link
//! impairments, with assertions on the victim network's ground truth.

use wazabee::TrackerAttack;
use wazabee_dot154::Dot154Channel;
use wazabee_radio::{Link, LinkConfig};
use wazabee_zigbee::{AtCommand, NodeRole, ZigbeeNetwork};

#[test]
fn full_attack_under_noisy_link() {
    let mut net = ZigbeeNetwork::paper_testbed();
    let mut attack = TrackerAttack::new(8).unwrap();
    let mut link = Link::new(LinkConfig::office_3m(), 31);
    let report = attack.execute(&mut net, &mut link);
    assert!(report.complete(), "attack incomplete: {report:?}");
    assert_eq!(report.discovered.unwrap().pan, 0x1234);
    assert_eq!(report.sensor, Some(0x0063));
}

#[test]
fn dos_silences_the_legitimate_sensor() {
    let mut net = ZigbeeNetwork::paper_testbed();
    let mut attack = TrackerAttack::new(8).unwrap();
    let mut link = Link::new(LinkConfig::office_3m(), 32);

    let pan = attack.active_scan(&mut net, &mut link).unwrap();
    let sensor = attack.eavesdrop(&mut net, &mut link, pan, 8_000).unwrap();
    assert!(attack.inject_remote_at(&mut net, &mut link, pan, sensor));

    // After the DoS, the sensor transmits on the exile channel; no further
    // legitimate reading reaches the coordinator.
    let before = net.coordinator().readings().len();
    let deadline = net.now().plus_ms(10_000);
    net.run_until(deadline);
    let after = net.coordinator().readings().len();
    assert_eq!(
        after, before,
        "coordinator still hears the sensor after DoS"
    );

    // The sensor's own AT log records the forged command.
    assert_eq!(
        net.node(1).at_log(),
        &[AtCommand::Channel(attack.dos_channel.number())]
    );
}

#[test]
fn scan_finds_networks_on_any_channel() {
    // Move the victim network around the band; the scan must find it.
    for ch in [11u8, 15, 20, 26] {
        let channel = Dot154Channel::new(ch).unwrap();
        let mut net = ZigbeeNetwork::new();
        net.add_node(wazabee_zigbee::XbeeNode::new(
            wazabee_zigbee::NodeConfig {
                pan: 0xBEE0 + u16::from(ch),
                short_addr: 0x0001,
                channel,
            },
            NodeRole::Coordinator,
        ));
        let mut attack = TrackerAttack::new(8).unwrap();
        let mut link = Link::new(LinkConfig::office_3m(), u64::from(ch));
        let pan = attack
            .active_scan(&mut net, &mut link)
            .unwrap_or_else(|| panic!("scan missed the network on channel {ch}"));
        assert_eq!(pan.channel, channel);
        assert_eq!(pan.pan, 0xBEE0 + u16::from(ch));
    }
}

#[test]
fn fake_readings_carry_the_attackers_values() {
    let mut net = ZigbeeNetwork::paper_testbed();
    let mut attack = TrackerAttack::new(8).unwrap();
    let mut link = Link::new(LinkConfig::office_3m(), 35);
    let pan = attack.active_scan(&mut net, &mut link).unwrap();
    let accepted = attack.inject_fake_readings(&mut net, &mut link, pan, 0x0063, 0xF000, 4, 300);
    assert_eq!(accepted, 4);
    let values: Vec<u16> = net
        .coordinator()
        .readings()
        .iter()
        .filter(|r| r.value >= 0xF000)
        .map(|r| r.value)
        .collect();
    assert_eq!(values, vec![0xF000, 0xF001, 0xF002, 0xF003]);
}
