//! The live observability plane end to end: snapshot JSON schema, the
//! mid-run snapshot server, sim-time timeline determinism, and the
//! `reset()` guarantees the parallel sweep driver depends on.
//!
//! Telemetry metrics are process-global, so every test that mutates or
//! reads global registries takes the file-local lock (the timeline tests
//! don't need it — the sim's series are instance-owned by design).

use std::io::{Read, Write};
use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use wazabee_bench::sweep::par_map_with;
use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::Dot154Channel;
use wazabee_integration::{parse_json, Json};
use wazabee_radio::Instant;
use wazabee_sim::{SimConfig, SpectrumSim};
use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode, XbeePayload};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

const PAN: u16 = 0x1234;
const COORD: u16 = 0x0042;

// ---------------------------------------------------------------------------
// Snapshot JSON schema
// ---------------------------------------------------------------------------

/// Touches one metric of every kind so the snapshot has something to show.
fn populate_metrics() {
    wazabee_telemetry::counter!("obs.test.counter").add(3);
    wazabee_telemetry::labeled_counter!("obs.test.labeled")
        .add(&[("channel", "15"), ("node", "xbee-3")], 7);
    wazabee_telemetry::labeled_gauge!("obs.test.gauge").set(&[("stage", "fir")], 0.25);
    wazabee_telemetry::labeled_histogram!("obs.test.lhist", 0.0, 64.0)
        .record(&[("stage", "fir")], 17.0);
    wazabee_telemetry::value_histogram!("obs.test.vhist", 0.0, 64.0).record(5.0);
    {
        let _s = wazabee_telemetry::stage!("obs.test.stage");
        std::hint::black_box(0u64);
    }
    wazabee_telemetry::timeseries!("obs.test.series", 42.0);
}

/// Finds the family entry named `name` in a snapshot section.
fn family<'a>(snapshot: &'a Json, section: &str, name: &str) -> Option<&'a Json> {
    snapshot
        .get(section)?
        .as_array()?
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some(name))
}

#[test]
fn snapshot_json_round_trips_through_a_parser() {
    let _l = lock();
    wazabee_telemetry::reset();
    populate_metrics();

    let raw = wazabee_telemetry::snapshot_json();
    let snap = parse_json(&raw).expect("snapshot JSON parses");

    assert_eq!(
        snap.get("schema").and_then(Json::as_str),
        Some("wazabee.telemetry.snapshot/1")
    );
    assert_eq!(snap.get("enabled").and_then(Json::as_bool), Some(true));

    // Flat counter.
    let counters = snap.get("counters").expect("counters object");
    assert_eq!(
        counters.get("obs.test.counter").and_then(Json::as_f64),
        Some(3.0)
    );

    // Labeled counter: the cell carries its labels and value.
    let fam = family(&snap, "labeled_counters", "obs.test.labeled").expect("labeled family");
    let cell = fam
        .get("cells")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find(|c| {
            c.get("labels")
                .and_then(|l| l.get("channel"))
                .and_then(Json::as_str)
                == Some("15")
        });
    let cell = cell.expect("channel=15 cell present");
    assert_eq!(
        cell.get("labels")
            .and_then(|l| l.get("node"))
            .and_then(Json::as_str),
        Some("xbee-3")
    );
    assert_eq!(cell.get("value").and_then(Json::as_f64), Some(7.0));

    // Gauge and labeled histogram families exist with our cells.
    assert!(family(&snap, "gauges", "obs.test.gauge").is_some());
    let lhist = family(&snap, "labeled_histograms", "obs.test.lhist").expect("lhist family");
    let hcell = &lhist.get("cells").unwrap().as_array().unwrap()[0];
    assert_eq!(hcell.get("count").and_then(Json::as_f64), Some(1.0));
    assert_eq!(hcell.get("mean").and_then(Json::as_f64), Some(17.0));

    // Stage profile: our span completed once with self <= total.
    let stages = snap.get("stages").unwrap().as_array().unwrap();
    let stage = stages
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("obs.test.stage"))
        .expect("stage row present");
    assert_eq!(stage.get("count").and_then(Json::as_f64), Some(1.0));
    let self_ns = stage.get("self_ns").and_then(Json::as_f64).unwrap();
    let total_ns = stage.get("total_ns").and_then(Json::as_f64).unwrap();
    assert!(self_ns <= total_ns);

    // Wall-clock series: one [t, value] point pair.
    let series = snap.get("wall_series").unwrap().as_array().unwrap();
    let ours = series
        .iter()
        .find(|s| s.get("series").and_then(Json::as_str) == Some("obs.test.series"))
        .expect("wall series present");
    let points = ours.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 1);
    let pair = points[0].as_array().unwrap();
    assert_eq!(pair[1].as_f64(), Some(42.0));

    wazabee_telemetry::reset();
}

// ---------------------------------------------------------------------------
// Snapshot server end to end
// ---------------------------------------------------------------------------

#[test]
fn snapshot_server_answers_live_requests_over_tcp() {
    let _l = lock();
    wazabee_telemetry::reset();
    populate_metrics();

    let addr = wazabee_telemetry::serve("127.0.0.1:0").expect("bind snapshot server");
    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
    conn.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();

    assert!(
        response.starts_with("HTTP/1.0 200 OK"),
        "unexpected status line: {}",
        response.lines().next().unwrap_or_default()
    );
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1;
    let snap = parse_json(body).expect("served body is valid JSON");
    assert_eq!(
        snap.get("schema").and_then(Json::as_str),
        Some("wazabee.telemetry.snapshot/1")
    );
    // The live snapshot reflects current metric state, labels included.
    let fam = family(&snap, "labeled_counters", "obs.test.labeled").expect("labeled family");
    assert!(!fam.get("cells").unwrap().as_array().unwrap().is_empty());
    assert!(!snap.get("stages").unwrap().as_array().unwrap().is_empty());

    wazabee_telemetry::reset();
}

/// Reads one `Content-Length`-framed HTTP response off a kept-alive
/// connection, returning `(status_line, body)`.
fn read_keepalive_response(conn: &mut std::net::TcpStream) -> (String, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        assert_eq!(conn.read(&mut byte).unwrap(), 1, "connection closed early");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).unwrap();
    let status = head.lines().next().unwrap().to_string();
    let len: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(str::to_string)
        })
        .expect("Content-Length header")
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    conn.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

#[test]
fn snapshot_server_keeps_http11_connections_alive() {
    let _l = lock();
    wazabee_telemetry::reset();
    populate_metrics();

    let addr = wazabee_telemetry::serve("127.0.0.1:0").expect("bind snapshot server");
    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");

    // Several sequential requests over ONE connection — the polling loop of
    // a live dashboard watching a long-running serve process. The counter is
    // bumped between polls, so each response must be a fresh snapshot, not a
    // replay.
    for poll in 1..=3u64 {
        wazabee_telemetry::counter!("obs.keepalive.polls").inc();
        conn.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (status, body) = read_keepalive_response(&mut conn);
        assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
        let snap = parse_json(&body).expect("snapshot parses");
        let polls = snap
            .get("counters")
            .unwrap()
            .get("obs.keepalive.polls")
            .and_then(Json::as_f64)
            .expect("poll counter present");
        assert_eq!(polls as u64, poll, "snapshot must be live, not cached");
    }
    // Other routes share the kept-alive connection.
    conn.write_all(b"GET /trace HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let (status, body) = read_keepalive_response(&mut conn);
    assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
    assert!(body.contains("traceEvents"));

    // `Connection: close` is honoured: one last answer, then EOF.
    conn.write_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, _) = read_keepalive_response(&mut conn);
    assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after Connection: close");

    // HTTP/1.0 keeps the original one-shot close-after-answer contract.
    let mut oneshot = std::net::TcpStream::connect(&addr).expect("connect");
    oneshot.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    oneshot.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");

    wazabee_telemetry::reset();
}

// ---------------------------------------------------------------------------
// Sim-time timeline
// ---------------------------------------------------------------------------

fn node(addr: u16, role: NodeRole) -> XbeeNode {
    XbeeNode::new(
        NodeConfig {
            pan: PAN,
            short_addr: addr,
            channel: Dot154Channel::new(14).unwrap(),
        },
        role,
    )
}

/// A small attacked cell with the timeline on: coordinator, two sensors,
/// and a WazaBee injector whose first keyup lands mid-run (50 ms) so the
/// onset is visible in the sampled series. Returns the timeline JSONL.
fn run_timeline_cell(seed: u64, iq_chunk: usize) -> (String, usize) {
    let ch = Dot154Channel::new(14).unwrap();
    let mut cfg = SimConfig::ideal();
    cfg.seed = seed;
    cfg.iq_chunk = iq_chunk.max(1);
    let mut sim = SpectrumSim::new(cfg);
    sim.add_zigbee(node(COORD, NodeRole::Coordinator));
    sim.add_zigbee(node(0x0063, NodeRole::Sensor { interval_ms: 40 }));
    sim.add_zigbee(node(0x0064, NodeRole::Sensor { interval_ms: 40 }));
    let attacker = sim.add_wazabee_injector(ch, 1.0);
    let mut t = Instant(0).plus_ms(50);
    for seq in 0..5u8 {
        let forged = MacFrame::data(
            PAN,
            0x0063,
            COORD,
            seq,
            XbeePayload::reading(7777).to_bytes(),
        );
        sim.inject_at(attacker, t, forged);
        t = t.plus_ms(7);
    }
    sim.enable_timeline(10_000);
    sim.run_until(Instant(0).plus_ms(130));
    (sim.timeline_jsonl(), attacker)
}

#[test]
fn timeline_jsonl_parses_and_shows_attacker_onset() {
    let (jsonl, attacker) = run_timeline_cell(0xA11CE, 4096);
    assert!(!jsonl.is_empty());

    let mut attacker_tx: Vec<(f64, f64)> = Vec::new();
    let mut names = std::collections::BTreeSet::new();
    for line in jsonl.lines() {
        let rec = parse_json(line).expect("timeline line parses");
        assert_eq!(rec.get("type").and_then(Json::as_str), Some("timeseries"));
        let series = rec.get("series").and_then(Json::as_str).expect("series");
        let t = rec.get("t").and_then(Json::as_f64).expect("t");
        let value = rec.get("value").and_then(Json::as_f64).expect("value");
        names.insert(series.to_string());
        let node_label = rec
            .get("labels")
            .and_then(|l| l.get("node"))
            .and_then(Json::as_str);
        if series == "node.tx_total" && node_label == Some(&attacker.to_string()) {
            attacker_tx.push((t, value));
        }
    }

    for expected in [
        "node.airtime_occupancy",
        "node.tx_total",
        "sim.readings_sent",
        "sim.readings_delivered",
        "sim.delivery_ratio",
        "sim.collisions",
    ] {
        assert!(names.contains(expected), "missing series {expected}");
    }

    // Attack onset: the injector's cumulative tx count is zero before its
    // first keyup at t = 50 ms and steps off zero after.
    assert!(attacker_tx.len() >= 10, "ticks every 10 ms over 130 ms");
    assert!(attacker_tx.iter().all(|&(t, v)| t < 50_000.0 || v >= 0.0));
    assert!(
        attacker_tx
            .iter()
            .filter(|&&(t, _)| t < 50_000.0)
            .all(|&(_, v)| v == 0.0),
        "injector transmitted before onset"
    );
    assert!(
        attacker_tx
            .iter()
            .filter(|&&(t, _)| t > 80_000.0)
            .any(|&(_, v)| v > 0.0),
        "injector onset never visible: {attacker_tx:?}"
    );
}

#[test]
fn timeline_artifact_is_identical_across_worker_counts() {
    let cells: Vec<(u64, usize)> = (0..4u64).map(|k| (0xBEE + 31 * k, 4096)).collect();
    let serial = par_map_with(Some(1), cells.clone(), |(s, c)| run_timeline_cell(s, c).0);
    let four = par_map_with(Some(4), cells, |(s, c)| run_timeline_cell(s, c).0);
    assert!(serial.iter().all(|jsonl| !jsonl.is_empty()));
    assert_eq!(serial, four, "timeline artifacts diverged across workers");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, any IQ chunk size — including degenerate one-sample chunks
    /// that drive the planar SIMD engine through its incremental diff-cache
    /// path on every push: the timeline artifact is byte-identical on one
    /// worker and four — the same determinism contract as the committed
    /// event log.
    #[test]
    fn timeline_is_invariant_to_chunking_and_threads(
        seed in 0u64..1_000,
        chunk in 1usize..20_000,
    ) {
        let cells = vec![(seed, chunk), (seed, 4096), (seed, 1)];
        let serial = par_map_with(Some(1), cells.clone(), |(s, c)| run_timeline_cell(s, c).0);
        let four = par_map_with(Some(4), cells, |(s, c)| run_timeline_cell(s, c).0);
        prop_assert_eq!(&serial[0], &serial[1], "chunk size changed the timeline");
        prop_assert_eq!(&serial[0], &serial[2], "one-sample chunks changed the timeline");
        prop_assert_eq!(serial, four, "worker count changed the timeline");
    }
}

// ---------------------------------------------------------------------------
// reset() and sweep-cell isolation
// ---------------------------------------------------------------------------

#[test]
fn reset_clears_every_observability_surface() {
    let _l = lock();
    wazabee_telemetry::reset();
    populate_metrics();
    wazabee_telemetry::event("obs.test.trace", Some(1.0));

    wazabee_telemetry::reset();

    // Flat + labeled counters read zero through cached statics.
    assert_eq!(wazabee_telemetry::counter!("obs.test.counter").get(), 0);
    assert_eq!(
        wazabee_telemetry::labeled_counter!("obs.test.labeled")
            .get(&[("channel", "15"), ("node", "xbee-3")]),
        0
    );

    let snap = parse_json(&wazabee_telemetry::snapshot_json()).unwrap();
    // Stage rows with zero completions are filtered from the report.
    assert!(
        !snap
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("obs.test.stage")),
        "stage profile survived reset"
    );
    // Wall series keep their registration but hold no points.
    for series in snap.get("wall_series").unwrap().as_array().unwrap() {
        assert_eq!(
            series.get("points").unwrap().as_array().unwrap().len(),
            0,
            "wall series survived reset"
        );
    }
    // The trace ring is empty again.
    let (events, dropped) = wazabee_telemetry::drain_trace();
    assert!(events.is_empty(), "trace ring survived reset");
    assert_eq!(dropped, 0);

    // No alerts survive either (populate_metrics never trips a rule here,
    // but a stale latch from another test must not leak through reset).
    assert!(
        snap.get("alerts").unwrap().as_array().is_some(),
        "snapshot lost its alerts section"
    );
    assert!(wazabee_telemetry::health_ok(), "alert latch survived reset");
}

/// `reset()` must clear health-rule latches and restart the span-id
/// sequence — the sweep driver's per-cell reset otherwise leaks one cell's
/// alerts and causal ids into the next (PR 6's cross-cell leakage class).
#[test]
fn reset_clears_health_latches_and_span_id_sequence() {
    let _l = lock();
    wazabee_telemetry::reset();

    wazabee_telemetry::health_rule!(
        "obs.cell.alert",
        wazabee_telemetry::Signal::counter("obs.cell.tripwire"),
        > 0
    );
    wazabee_telemetry::counter!("obs.cell.tripwire").inc();
    let alerts = wazabee_telemetry::evaluate_health();
    let fired = alerts.iter().find(|a| a.name == "obs.cell.alert").unwrap();
    assert!(fired.firing && fired.latched, "rule should trip: {fired:?}");
    assert!(!wazabee_telemetry::health_ok());

    let span_id_before = {
        let span = wazabee_telemetry::span!("obs.cell.span");
        span.id()
    };
    assert!(span_id_before > 0);

    wazabee_telemetry::reset();

    // The latch is released and the rule sees no data (counter is zero →
    // the counter signal still reads Some(0), which does not fire).
    let alerts = wazabee_telemetry::evaluate_health();
    let calm = alerts.iter().find(|a| a.name == "obs.cell.alert").unwrap();
    assert!(
        !calm.firing && !calm.latched,
        "health latch leaked across reset: {calm:?}"
    );
    assert!(wazabee_telemetry::health_ok());

    // Span ids restart from 1: a second sweep cell's trace is
    // byte-comparable to the first's.
    let span_id_after = {
        let span = wazabee_telemetry::span!("obs.cell.span");
        span.id()
    };
    assert_eq!(span_id_after, 1, "span-id sequence survived reset");

    wazabee_telemetry::reset();
}

/// The sweep driver's per-cell pattern: reset, run, read. A second identical
/// cell must observe identical global metrics — nothing accumulated from the
/// first cell may leak in (the regression `reset()` now guards against for
/// labeled families, stage stats and series state).
#[test]
fn par_map_sweep_cells_do_not_leak_global_state() {
    let _l = lock();

    // One call site for write and read: the macro statics are per call
    // site, and the closure re-executes the same site for every cell.
    let run_cell = || {
        wazabee_telemetry::reset();
        let labeled = wazabee_telemetry::labeled_counter!("obs.cell.labeled");
        labeled.add(&[("channel", "15")], 7);
        let counter = wazabee_telemetry::counter!("obs.cell.counter");
        counter.add(3);
        {
            let _s = wazabee_telemetry::stage!("obs.cell.stage");
            std::hint::black_box(0u64);
        }
        let stage_count = wazabee_telemetry::profile_report()
            .iter()
            .find(|row| row.name == "obs.cell.stage")
            .map_or(0, |row| row.count);
        (
            labeled.get(&[("channel", "15")]),
            counter.get(),
            stage_count,
        )
    };

    let first = run_cell();
    let second = run_cell();
    assert_eq!(first, second, "global metric state leaked between cells");
    assert_eq!(first, (7, 3, 1));

    // Instance-owned sim timelines are immune even without reset: two cells
    // running concurrently under the sweep driver record disjoint series.
    let pair = par_map_with(Some(2), vec![(1u64, 4096usize), (2, 4096)], |(s, c)| {
        run_timeline_cell(s, c).0
    });
    let alone_a = run_timeline_cell(1, 4096).0;
    let alone_b = run_timeline_cell(2, 4096).0;
    assert_eq!(pair[0], alone_a, "concurrent cell A polluted");
    assert_eq!(pair[1], alone_b, "concurrent cell B polluted");

    wazabee_telemetry::reset();
}
