//! Robustness fuzzing: no receiver in the workspace may panic on arbitrary
//! inputs — garbage IQ, garbage bits, garbage bytes.

use proptest::prelude::*;
use wazabee::{WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleChannel, BleModem, BlePacket, BlePhy};
use wazabee_dot154::{Dot154Modem, MacFrame, Ppdu};
use wazabee_dsp::Iq;
use wazabee_esb::{EsbModem, EsbPacket};
use wazabee_ids::{ChannelMonitor, MonitorConfig};

fn garbage_iq(seed: u64, n: usize) -> Vec<Iq> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| Iq::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn receivers_survive_garbage_iq(seed in any::<u64>(), n in 0usize..30_000) {
        let buf = garbage_iq(seed, n);
        let _ = Dot154Modem::new(8).receive(&buf);
        let _ = BleModem::new(BlePhy::Le2M, 8).receive(&buf, 0x8E89_BED6, BleChannel::new(8).unwrap(), true);
        let _ = EsbModem::new(8).receive(&buf, [0xE7; 5]);
        let _ = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap().receive(&buf);
    }

    #[test]
    fn ids_survives_garbage_iq(seed in any::<u64>(), n in 0usize..30_000) {
        let buf = garbage_iq(seed, n);
        let mut monitor = ChannelMonitor::new(2420, 8, MonitorConfig::default());
        let _ = monitor.observe(&buf);
    }

    #[test]
    fn frame_parsers_survive_garbage_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let _ = MacFrame::from_psdu(&bytes);
        let _ = MacFrame::from_bytes(&bytes);
        let _ = EsbPacket::from_air_bits(&bytes.iter().map(|b| b & 1).collect::<Vec<_>>(), 5);
        let _ = wazabee_ble::AuxAdvInd::from_bytes(&bytes);
        let _ = wazabee_ble::AdvExtInd::from_bytes(&bytes);
        let _ = wazabee_ble::AdvPdu::from_bytes(&bytes);
        let _ = wazabee_ble::ConnectionParameters::from_bytes(&bytes);
        let _ = wazabee_ble::DataPdu::from_bytes(&bytes);
        let _ = wazabee_zigbee::XbeePayload::from_bytes(&bytes);
        let _ = wazabee_zigbee::parse_stream(&bytes);
        let _ = wazabee::exfil::Chunk::from_bytes(&bytes);
    }

    #[test]
    fn ble_packet_parser_survives_garbage_bits(bits in proptest::collection::vec(0u8..=1, 0..600)) {
        let _ = BlePacket::from_air_bits(&bits, BleChannel::new(0).unwrap(), BlePhy::Le2M, true);
        let _ = BlePacket::from_body_bits(0xDEAD_BEEF, &bits, BleChannel::new(5).unwrap(), true);
    }

    #[test]
    fn truncated_waveforms_never_panic(cut in 0usize..100) {
        // A legitimate frame cut at an arbitrary percentage of its length.
        let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
        let ppdu = Ppdu::new(wazabee_dot154::fcs::append_fcs(&[1, 2, 3, 4])).unwrap();
        let air = tx.transmit(&ppdu);
        let end = air.len() * cut / 100;
        let _ = Dot154Modem::new(8).receive(&air[..end]);
        let _ = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap().receive(&air[..end]);
    }
}
