//! Cross-crate equivalence tests for the packed-bitstream fast path and the
//! deterministic parallel sweep engine.
//!
//! The packed kernels (word-packed Hamming, sliding-register correlation,
//! `u32` despreading tables) must agree bit-for-bit with the scalar
//! references they replaced, on arbitrary streams — and the parallel channel
//! sweep must produce byte-identical artifacts at any thread count.

use proptest::prelude::*;
use wazabee_bench::table3::{render_table, run_primitive, Primitive, Table3Config};
use wazabee_chips::{cc1352r1, nrf52832};
use wazabee_dsp::correlate::{
    best_pattern_match, best_pattern_match_scalar, find_pattern, find_pattern_scalar,
};
use wazabee_dsp::PackedBits;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packing round-trips any 0/1 stream, and packed Hamming equals the
    /// scalar byte-per-bit count.
    #[test]
    fn prop_packed_hamming_matches_scalar(
        a in proptest::collection::vec(0u8..=1, 0..300),
    ) {
        let b: Vec<u8> = a.iter().map(|&x| x ^ ((a.len() % 3 == 0) as u8)).collect();
        let pa = PackedBits::from_bits(&a);
        let pb = PackedBits::from_bits(&b);
        prop_assert_eq!(pa.to_bits(), a.clone());
        prop_assert_eq!(pa.hamming(&pb), wazabee_dsp::bits::hamming(&a, &b));
    }

    /// The packed correlator (the shim every receive path uses) returns the
    /// same match — index and error count — as the scalar reference, for
    /// short patterns (sliding register) and long ones (word compare).
    #[test]
    fn prop_find_pattern_matches_scalar(
        stream in proptest::collection::vec(0u8..=1, 0..400),
        pattern in proptest::collection::vec(0u8..=1, 1..100),
        start in 0usize..50,
        max_errors in 0usize..6,
    ) {
        prop_assert_eq!(
            find_pattern(&stream, &pattern, start, max_errors),
            find_pattern_scalar(&stream, &pattern, start, max_errors)
        );
        prop_assert_eq!(
            best_pattern_match(&stream, &pattern),
            best_pattern_match_scalar(&stream, &pattern)
        );
    }

    /// Packed Algorithm-1 despreading equals the scalar reference on any
    /// 31-bit block.
    #[test]
    fn prop_despread_msk_block_matches_scalar(
        bits in proptest::collection::vec(0u8..=1, 31),
    ) {
        let packed = wazabee_dsp::packed::pack_u32(&bits);
        prop_assert_eq!(
            wazabee::msk::despread_msk_block_packed(packed),
            wazabee::msk::despread_msk_block_scalar(&bits)
        );
        prop_assert_eq!(
            wazabee::msk::despread_msk_block(&bits),
            wazabee::msk::despread_msk_block_scalar(&bits)
        );
    }

    /// Packed waveform-table despreading equals its scalar reference on any
    /// 31-bit block.
    #[test]
    fn prop_closest_symbol_msk_matches_scalar(
        bits in proptest::collection::vec(0u8..=1, 31),
    ) {
        let packed = wazabee_dsp::packed::pack_u32(&bits);
        prop_assert_eq!(
            wazabee_dot154::msk::closest_symbol_msk_packed(packed),
            wazabee_dot154::msk::closest_symbol_msk_scalar(&bits)
        );
    }
}

/// Serialises the two tests that drive `run_primitive` in this binary:
/// both read process-global telemetry counters, so they must not overlap.
static RUN_PRIMITIVE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The Table III sweep renders byte-identical output at one worker and at
/// many — per-channel seeds make the grid order-independent, and the sweep
/// driver merges results in input order.
#[test]
fn table3_fast_config_identical_at_1_and_4_threads() {
    let _guard = RUN_PRIMITIVE_LOCK.lock().unwrap();
    let render = |threads: Option<usize>| {
        let cfg = Table3Config {
            frames: 4,
            threads,
            ..Table3Config::quick()
        };
        let nrf = nrf52832();
        let cc = cc1352r1();
        let rx_nrf = run_primitive(&nrf, Primitive::Reception, &cfg);
        let rx_cc = run_primitive(&cc, Primitive::Reception, &cfg);
        let tx_nrf = run_primitive(&nrf, Primitive::Transmission, &cfg);
        let tx_cc = run_primitive(&cc, Primitive::Transmission, &cfg);
        render_table("nRF52832", &rx_nrf, &tx_nrf, "CC1352-R1", &rx_cc, &tx_cc)
    };
    let serial = render(Some(1));
    let parallel = render(Some(4));
    assert_eq!(serial, parallel, "thread count changed the artifact");
}

/// Telemetry counters accumulate the same totals under the parallel sweep as
/// under the serial one — the atomic counters must not lose increments.
///
/// Counter statics are per call site and merged by name in the summary sink,
/// so the totals are read back out of the rendered summary.
#[test]
fn telemetry_counters_survive_concurrency() {
    let _guard = RUN_PRIMITIVE_LOCK.lock().unwrap();
    let counter_total = |name: &str, summary: &str| -> u64 {
        summary
            .lines()
            .find_map(|l| {
                let l = l.trim();
                l.strip_prefix(name)
                    .and_then(|rest| rest.trim().parse().ok())
            })
            .unwrap_or_else(|| panic!("counter {name} absent from summary"))
    };
    let run = |threads: Option<usize>| -> u64 {
        let cfg = Table3Config {
            frames: 3,
            threads,
            ..Table3Config::quick()
        };
        wazabee_telemetry::reset();
        let _ = run_primitive(&nrf52832(), Primitive::Reception, &cfg);
        counter_total("wazabee.rx.despread.symbols", &wazabee_telemetry::summary())
    };
    let serial = run(Some(1));
    let parallel = run(Some(4));
    assert!(serial > 0, "no despread activity recorded");
    assert_eq!(serial, parallel, "counter increments lost under threads");
}
