//! Causal decode tracing end to end: span nesting across threads, bounded
//! ring eviction semantics, and the Chrome Trace Event export — validated
//! with the in-repo JSON parser the same way Perfetto would consume it.
//!
//! The trace ring is process-global, so every test takes the file-local
//! lock and resets telemetry on entry and exit.

use std::sync::{Mutex, MutexGuard};

use wazabee::WazaBeeRx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::fcs::append_fcs;
use wazabee_dot154::Ppdu;
use wazabee_integration::{parse_json, Json};
use wazabee_telemetry::{TraceEvent, TraceKind, TRACE_CAPACITY};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Finds the enter record for a span by name.
fn enter<'a>(events: &'a [TraceEvent], name: &str) -> &'a TraceEvent {
    events
        .iter()
        .find(|e| e.name == name && matches!(e.kind, TraceKind::SpanEnter))
        .unwrap_or_else(|| panic!("no enter record for {name}"))
}

// ---------------------------------------------------------------------------
// Parent/child links across threads
// ---------------------------------------------------------------------------

#[test]
fn span_nesting_is_per_thread_and_parents_resolve() {
    let _l = lock();
    wazabee_telemetry::reset();

    // Two threads build the same two-level nesting concurrently. Each
    // thread's child must point at *its own* parent — a process-global
    // current-span would cross the streams.
    let handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(|| {
                let outer = wazabee_telemetry::span!("ct.outer");
                let inner = wazabee_telemetry::span!("ct.inner", step = 1u32);
                (outer.id(), inner.id())
            })
        })
        .collect();
    let ids: Vec<(u64, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let (events, dropped) = wazabee_telemetry::drain_trace();
    assert_eq!(dropped, 0);

    for &(outer_id, inner_id) in &ids {
        let inner_enter = events
            .iter()
            .find(|e| e.span_id == inner_id && matches!(e.kind, TraceKind::SpanEnter))
            .expect("inner enter recorded");
        assert_eq!(
            inner_enter.parent_id, outer_id,
            "child must link to its own thread's parent"
        );
        // Parent and child records agree on the thread.
        let outer_enter = events
            .iter()
            .find(|e| e.span_id == outer_id && matches!(e.kind, TraceKind::SpanEnter))
            .expect("outer enter recorded");
        assert_eq!(inner_enter.thread_id, outer_enter.thread_id);
        assert_eq!(outer_enter.parent_id, 0, "outer span is a root");
    }

    // The two workers got distinct thread ids and distinct span ids.
    let t0 = enter(&events, "ct.outer").thread_id;
    assert!(
        events
            .iter()
            .filter(|e| e.name == "ct.outer")
            .any(|e| e.thread_id != t0),
        "both workers mapped to one thread id"
    );
    assert_ne!(ids[0], ids[1]);

    wazabee_telemetry::reset();
}

// ---------------------------------------------------------------------------
// Bounded-ring eviction
// ---------------------------------------------------------------------------

#[test]
fn eviction_marks_orphans_instead_of_inventing_roots() {
    let _l = lock();
    wazabee_telemetry::reset();

    // One long-lived parent, then enough children to evict the parent's
    // enter record (each child is an enter + exit pair).
    let parent = wazabee_telemetry::span!("ct.evicted.parent");
    let parent_id = parent.id();
    for k in 0..TRACE_CAPACITY {
        let _child = wazabee_telemetry::span!("ct.child", k = k);
    }

    let doc = wazabee_telemetry::trace_chrome_json();
    let json = parse_json(&doc).expect("export is valid JSON");

    // The parent's own records were pushed out of the ring...
    let events = json.get("traceEvents").unwrap().as_array().unwrap();
    assert!(
        !events.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(Json::as_f64)
                == Some(parent_id as f64)
        }),
        "parent record unexpectedly still in the ring"
    );
    // ...so surviving children are explicitly flagged, not silently reparented.
    let children: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("ct.child"))
        .collect();
    assert!(!children.is_empty());
    for child in &children {
        let args = child.get("args").unwrap();
        assert_eq!(
            args.get("parent").and_then(Json::as_f64),
            Some(parent_id as f64)
        );
        assert_eq!(
            args.get("parent_evicted").and_then(Json::as_bool),
            Some(true),
            "child of an evicted parent must carry the orphan marker: {child:?}"
        );
    }
    // The eviction count is reported, not hidden.
    let evicted = json
        .get("otherData")
        .unwrap()
        .get("evicted_records")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(evicted > 0.0, "eviction count missing from export");

    drop(parent);
    wazabee_telemetry::reset();
}

// ---------------------------------------------------------------------------
// Chrome Trace export of a real decode
// ---------------------------------------------------------------------------

#[test]
fn decode_spans_export_with_frame_args_and_resolvable_parents() {
    let _l = lock();
    wazabee_telemetry::reset();

    // Stream one genuine frame through the receiver under an enclosing
    // span, as the sim's per-receiver window does.
    let tx = wazabee::WazaBeeTx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap();
    let ppdu = Ppdu::new(append_fcs(&[0xAB, 0xCD, 1, 2, 3])).unwrap();
    let air = tx.transmit(&ppdu);
    {
        let _window = wazabee_telemetry::span!("ct.window", chan = 15u8);
        let mut stream = rx.stream();
        let mut results = Vec::new();
        for chunk in air.chunks(1500) {
            results.extend(stream.push(chunk));
        }
        results.extend(stream.finish());
        let frame = results.into_iter().find_map(Result::ok).unwrap();
        assert_eq!(frame.psdu, ppdu.psdu());
    }

    let doc = wazabee_telemetry::trace_chrome_json();
    let json = parse_json(&doc).expect("export is valid JSON");
    let events = json.get("traceEvents").unwrap().as_array().unwrap();

    // Every span id mentioned as a parent resolves to a span in the export.
    let mut span_ids = std::collections::HashSet::new();
    for e in events.iter() {
        if let Some(id) = e
            .get("args")
            .and_then(|a| a.get("span_id"))
            .and_then(Json::as_f64)
        {
            span_ids.insert(id as u64);
        }
    }
    let decode: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("rx.decode"))
        .collect();
    assert!(!decode.is_empty(), "no rx.decode span exported:\n{doc}");
    for d in &decode {
        let args = d.get("args").unwrap();
        assert_eq!(d.get("ph").and_then(Json::as_str), Some("X"));
        for key in ["frame", "bit", "lane", "sync_errors"] {
            assert!(
                args.get(key).and_then(Json::as_f64).is_some(),
                "decode span missing {key} arg: {d:?}"
            );
        }
        let parent = args.get("parent").and_then(Json::as_f64).unwrap() as u64;
        assert!(
            span_ids.contains(&parent),
            "decode span's parent {parent} not resolvable in export"
        );
    }
    // The enclosing window span is the decode spans' ancestor.
    let window = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("ct.window"))
        .expect("window span exported");
    let window_id = window
        .get("args")
        .unwrap()
        .get("span_id")
        .and_then(Json::as_f64)
        .unwrap() as u64;
    assert!(
        decode.iter().any(|d| {
            d.get("args")
                .unwrap()
                .get("parent")
                .and_then(Json::as_f64)
                .map(|p| p as u64)
                == Some(window_id)
        }),
        "no decode span nested under the receiver window"
    );

    wazabee_telemetry::reset();
}

// ---------------------------------------------------------------------------
// /healthz surfaces a tripped rule
// ---------------------------------------------------------------------------

#[test]
fn tripped_rule_surfaces_in_snapshot_and_health_json() {
    let _l = lock();
    wazabee_telemetry::reset();

    wazabee_telemetry::health_rule!(
        "ct.extra_frames",
        wazabee_telemetry::Signal::counter("ct.ids.extra_frames"),
        > 0
    );
    let healthy = parse_json(&wazabee_telemetry::health_json()).unwrap();
    assert_eq!(healthy.get("status").and_then(Json::as_str), Some("ok"));

    wazabee_telemetry::counter!("ct.ids.extra_frames").add(2);
    let sick = parse_json(&wazabee_telemetry::health_json()).unwrap();
    assert_eq!(sick.get("status").and_then(Json::as_str), Some("alert"));
    let alert = sick
        .get("alerts")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find(|a| a.get("name").and_then(Json::as_str) == Some("ct.extra_frames"))
        .expect("tripped rule listed");
    assert_eq!(alert.get("value").and_then(Json::as_f64), Some(2.0));

    // The same alert appears in the full snapshot document.
    let snap = parse_json(&wazabee_telemetry::snapshot_json()).unwrap();
    assert!(
        snap.get("alerts")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|a| a.get("name").and_then(Json::as_str) == Some("ct.extra_frames")),
        "alert missing from snapshot_json"
    );

    wazabee_telemetry::reset();
}
