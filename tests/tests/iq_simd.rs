//! Parity suite for the planar SIMD sample-domain kernels.
//!
//! Every explicit-width kernel in `wazabee_dsp::simd` keeps a `*_scalar`
//! twin written with the identical per-element expression and accumulation
//! order, so the two must agree **bitwise** — not merely within a tolerance —
//! on arbitrary lengths, including tails shorter than the lane width. On top
//! of the kernel-level checks, two fixture pins assert that moving sample
//! storage from interleaved `f64` to planar `f32` changes no decoded frame:
//! the streaming fixture and a Table III-style office-link fixture decode
//! identically through the planar engine and the retained `f64` reference
//! engine.

use proptest::prelude::*;
use wazabee::{WazaBeeError, WazaBeeRx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_chips::nrf52832;
use wazabee_dot154::msk::frame_chips_to_msk;
use wazabee_dot154::pn::pn_sequence;
use wazabee_dot154::{fcs::append_fcs, Dot154Channel, Dot154Modem, MacFrame, Ppdu, ReceivedPpdu};
use wazabee_dsp::simd::{
    accumulate_interleaved_at, accumulate_interleaved_at_scalar, axpy, axpy_scalar,
    discriminate_planar_into, discriminate_planar_scalar_into, fir_planar_into,
    fir_planar_scalar_into, fir_real_into, fir_real_scalar_into, nrz_hard_bits_into,
    window_sums_into, window_sums_scalar_into, LANES,
};
use wazabee_dsp::{Iq, IqBuf};
use wazabee_radio::{Link, LinkConfig, RfFrame, WifiChannel, WifiInterferer};

/// Bit patterns of an `f32` slice, for exact (not approximate) comparison.
fn bits_of(x: &[f32]) -> Vec<u32> {
    x.iter().map(|v| v.to_bits()).collect()
}

fn buf_bits(b: &IqBuf) -> (Vec<u32>, Vec<u32>) {
    (bits_of(b.i()), bits_of(b.q()))
}

/// Random lengths spanning several lane-width multiples, so every tail size
/// `0..LANES` (and the empty and one-sample cases) is hit across the runs.
const MAX_LEN: usize = 8 * LANES + 2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The blocked polar discriminator equals its scalar twin bit for bit,
    /// at any length and tail, including degenerate 0- and 1-sample inputs.
    #[test]
    fn prop_discriminate_planar_matches_scalar(
        n in 0usize..MAX_LEN,
        seed in any::<u64>(),
    ) {
        let (i, q) = random_rails(seed, n);
        let mut fast = vec![0.5f32; 3]; // non-empty: the kernels append
        let mut slow = fast.clone();
        discriminate_planar_into(&i, &q, &mut fast);
        discriminate_planar_scalar_into(&i, &q, &mut slow);
        prop_assert_eq!(bits_of(&fast), bits_of(&slow));
        prop_assert_eq!(fast.len(), 3 + n.saturating_sub(1));
    }

    /// Blocked window sums equal the scalar twin bitwise; trailing partial
    /// windows are dropped by both.
    #[test]
    fn prop_window_sums_match_scalar(
        n in 0usize..MAX_LEN,
        window in 1usize..13,
        seed in any::<u64>(),
    ) {
        let (x, _) = random_rails(seed, n);
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        window_sums_into(&x, window, &mut fast);
        window_sums_scalar_into(&x, window, &mut slow);
        prop_assert_eq!(bits_of(&fast), bits_of(&slow));
        prop_assert_eq!(fast.len(), n / window);
    }

    /// The fused scale-and-add equals its scalar twin bitwise, and hard
    /// slicing of any soft vector is sign-stable (`-0.0` slices as 1, like
    /// `+0.0` — both are `>= 0.0`).
    #[test]
    fn prop_axpy_and_slicing_match_scalar(
        n in 0usize..MAX_LEN,
        gain in -4.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let (src, base) = random_rails(seed, n);
        let mut fast = base.clone();
        let mut slow = base;
        axpy(&mut fast, &src, gain as f32);
        axpy_scalar(&mut slow, &src, gain as f32);
        prop_assert_eq!(bits_of(&fast), bits_of(&slow));

        let mut sliced = Vec::new();
        nrz_hard_bits_into(&fast, &mut sliced);
        let expect: Vec<u8> = fast.iter().map(|&s| u8::from(s >= 0.0)).collect();
        prop_assert_eq!(sliced, expect);
    }

    /// Superposition accumulation (interleaved `f64` source into a planar
    /// `f32` destination at an offset, fused gain) matches its scalar twin
    /// bitwise — including the resize when the source overruns the buffer.
    #[test]
    fn prop_accumulate_interleaved_matches_scalar(
        n in 0usize..MAX_LEN,
        dst_len in 0usize..120,
        offset in 0usize..90,
        gain in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let (i, q) = random_rails(seed, n);
        let src: Vec<Iq> = i
            .iter()
            .zip(&q)
            .map(|(&a, &b)| Iq::new(f64::from(a), f64::from(b)))
            .collect();
        let mut fast = IqBuf::new();
        fast.resize(dst_len);
        let mut slow = IqBuf::new();
        slow.resize(dst_len);
        accumulate_interleaved_at(&mut fast, &src, offset, gain);
        accumulate_interleaved_at_scalar(&mut slow, &src, offset, gain);
        prop_assert_eq!(buf_bits(&fast), buf_bits(&slow));
    }

    /// Scatter-form FIR filtering — real-rail and planar both-rail — matches
    /// the scalar twins bitwise, with zero taps exercising the skip path.
    #[test]
    fn prop_fir_kernels_match_scalar(
        n in 0usize..MAX_LEN,
        n_taps in 1usize..24,
        zero_mask in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let (x, q) = random_rails(seed, n);
        let (raw_taps, _) = random_rails(seed ^ 0x7A95, n_taps);
        let taps: Vec<f32> = raw_taps
            .iter()
            .enumerate()
            .map(|(k, &t)| if zero_mask >> (k % 32) & 1 == 1 { 0.0 } else { t })
            .collect();

        let mut fast = Vec::new();
        let mut slow = Vec::new();
        fir_real_into(&taps, &x, &mut fast);
        fir_real_scalar_into(&taps, &x, &mut slow);
        prop_assert_eq!(bits_of(&fast), bits_of(&slow));

        let mut planar = IqBuf::new();
        for (&a, &b) in x.iter().zip(&q) {
            planar.push(a, b);
        }
        let mut fast_iq = IqBuf::new();
        let mut slow_iq = IqBuf::new();
        fir_planar_into(&taps, planar.as_slice(), &mut fast_iq);
        fir_planar_scalar_into(&taps, planar.as_slice(), &mut slow_iq);
        prop_assert_eq!(buf_bits(&fast_iq), buf_bits(&slow_iq));
    }

    /// `IqBuf` round-trips interleaved samples through arbitrary slicing and
    /// front-draining without disturbing the retained lanes.
    #[test]
    fn prop_iqbuf_slicing_preserves_samples(
        n in 0usize..200,
        from in 0usize..220,
        drain in 0usize..220,
        seed in any::<u64>(),
    ) {
        let (i, q) = random_rails(seed, n);
        let interleaved: Vec<Iq> = i
            .iter()
            .zip(&q)
            .map(|(&a, &b)| Iq::new(f64::from(a), f64::from(b)))
            .collect();
        let mut buf = IqBuf::from_interleaved(&interleaved);
        prop_assert_eq!(bits_of(buf.as_slice().slice_from(from).i()),
                        bits_of(&i[from.min(n)..]));
        buf.drain_front(drain);
        let kept = drain.min(n);
        prop_assert_eq!(bits_of(buf.i()), bits_of(&i[kept..]));
        prop_assert_eq!(bits_of(buf.q()), bits_of(&q[kept..]));
    }
}

/// Deterministic pseudo-random `f32` rails, avoiding proptest vector
/// generation overhead at large lengths.
fn random_rails(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut i = Vec::with_capacity(n);
    let mut q = Vec::with_capacity(n);
    for _ in 0..n {
        i.push(rng.gen_range(-3.0f32..3.0));
        q.push(rng.gen_range(-3.0f32..3.0));
    }
    (i, q)
}

const SPS: usize = 8;

fn sniffer() -> WazaBeeRx<BleModem> {
    WazaBeeRx::new(BleModem::new(BlePhy::Le2M, SPS)).expect("LE 2M is the attack PHY")
}

fn run_engine(
    mut stream: wazabee::StreamingRx<'_, BleModem>,
    buf: &[Iq],
    chunk: usize,
) -> Vec<Result<ReceivedPpdu, WazaBeeError>> {
    let mut results = Vec::new();
    for piece in buf.chunks(chunk) {
        results.extend(stream.push(piece));
    }
    results.extend(stream.finish());
    results
}

/// The streaming fixture of `streaming.rs` — a decoy sync hit, then two real
/// frames behind silence gaps — decodes to the identical result sequence
/// (failures included) through the planar `f32` engine and the interleaved
/// `f64` reference engine, at several chunk sizes.
#[test]
fn planar_engine_matches_reference_on_streaming_fixture() {
    let ble = BleModem::new(BlePhy::Le2M, SPS);
    let zigbee = Dot154Modem::new(SPS);
    let rx = sniffer();

    let mut bits: Vec<u8> = (0..wazabee::tx::TX_WARMUP_BITS)
        .map(|k| (k % 2) as u8)
        .collect();
    let mut chips = pn_sequence(0).to_vec();
    chips.extend(pn_sequence(5));
    bits.extend(frame_chips_to_msk(&chips, 0));
    let mut capture = ble.transmit_raw(&bits);
    for k in 0..2u8 {
        capture.extend(vec![Iq::ZERO; 700 + 311 * usize::from(k)]);
        let ppdu = Ppdu::new(append_fcs(&[0x20 | k, 0x44, 0x55, 0x66])).unwrap();
        capture.extend(zigbee.transmit(&ppdu));
    }

    for chunk in [capture.len(), 4096, 777, 63] {
        let planar = run_engine(rx.stream(), &capture, chunk);
        let reference = run_engine(rx.stream_reference(), &capture, chunk);
        assert_eq!(planar, reference, "chunk {chunk}");
        assert_eq!(
            planar.iter().filter(|r| r.is_ok()).count(),
            2,
            "chunk {chunk} lost a frame"
        );
    }
}

/// A Table III-style fixture — counter frames crossing the office link at the
/// committed SNR, WiFi interferers included — decodes to the same frames
/// through both engines on a clear, a WiFi-overlapped and the testbed
/// channel. This pins that the f64→f32 storage change flips no decision in
/// the committed Table III artifact's regime.
#[test]
fn planar_engine_matches_reference_on_table3_fixture() {
    let chip = nrf52832();
    let zigbee = Dot154Modem::new(SPS);
    let rx = sniffer();
    let seed = 0x0DA7_AB34u64;

    for channel_number in [11u8, 14, 17, 22] {
        let channel = Dot154Channel::new(channel_number).unwrap();
        let link_cfg = LinkConfig {
            snr_db: Some(4.3 + chip.rx_quality_db),
            ..LinkConfig::office_3m()
        };
        let mut link = Link::new(link_cfg, seed ^ (u64::from(channel_number) << 32));
        let selectivity = 10f64.powf(-chip.rx_quality_db / 10.0);
        for wifi in [6u8, 11] {
            let mut interferer =
                WifiInterferer::office(WifiChannel::new(wifi).expect("WiFi channel"));
            interferer.power *= selectivity;
            link.add_interferer(interferer);
        }
        let mhz = channel.center_mhz();
        for counter in 0..10u16 {
            let mac = MacFrame::data(
                0x1234,
                0x0063,
                0x0042,
                counter as u8,
                counter.to_le_bytes().to_vec(),
            );
            let ppdu = Ppdu::new(mac.to_psdu()).expect("counter frame fits");
            let air = zigbee.transmit(&ppdu);
            let heard = link.deliver(&RfFrame::new(mhz, air, zigbee.sample_rate()), mhz);
            let planar = run_engine(rx.stream(), &heard, 4096);
            let reference = run_engine(rx.stream_reference(), &heard, 4096);
            let frames = |r: &[Result<ReceivedPpdu, WazaBeeError>]| -> Vec<(Vec<u8>, bool)> {
                r.iter()
                    .filter_map(|x| x.as_ref().ok())
                    .map(|f| (f.psdu.clone(), f.fcs_ok()))
                    .collect()
            };
            assert_eq!(
                frames(&planar),
                frames(&reference),
                "channel {channel_number} frame {counter}: decoded frames diverged"
            );
        }
    }
}
