//! End-to-end tests of the flight-recorder subsystem: typed RX failures,
//! JSONL decode provenance, `.cf32` IQ dumps (replayable through the
//! receiver) and PCAP frame export.
//!
//! The recorder is process-global, so every test takes the file-local lock
//! and installs its own configuration into a fresh temp directory.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use wazabee::{WazaBeeError, WazaBeeRx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::fcs::append_fcs;
use wazabee_dot154::{Dot154Modem, Ppdu};
use wazabee_flightrec as fr;
use wazabee_flightrec::pcap::{
    read_pcap, LINKTYPE_IEEE802_15_4_NOFCS, LINKTYPE_IEEE802_15_4_WITHFCS,
};
use wazabee_flightrec::{IqCaptureMode, RxFailure};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fresh, empty temp directory unique to this test and process.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wzb-fr-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &PathBuf) {
    fr::reset();
    let _ = std::fs::remove_dir_all(dir);
}

fn ble_rx() -> WazaBeeRx<BleModem> {
    WazaBeeRx::new(BleModem::new(BlePhy::Le2M, 8)).unwrap()
}

fn ppdu(payload: &[u8]) -> Ppdu {
    Ppdu::new(append_fcs(payload)).unwrap()
}

/// The ISSUE's acceptance scenario: one good frame and one forced decode
/// failure must yield (a) the typed failure from the API, (b) ok and fail
/// provenance lines in the JSONL log, (c) a `.cf32` IQ window whose sidecar
/// references the failing trace id, and (d) a PCAP holding the good frame.
#[test]
fn forced_failure_produces_trace_iq_and_pcap() {
    let _l = lock();
    let dir = temp_dir("accept");
    fr::FlightRecorder::builder()
        .capture_dir(&dir)
        .iq_mode(IqCaptureMode::OnFailure)
        .install()
        .unwrap();

    let modem = Dot154Modem::new(8);
    let rx = ble_rx();

    // A clean frame decodes and lands in the PCAP.
    let good = ppdu(&[0x01, 0x08, 0x42, 0x13, 0x37]);
    let heard = rx.try_receive(&modem.transmit(&good)).unwrap();
    assert_eq!(heard.psdu, good.psdu());

    // A capture cut mid-PSDU is the forced failure.
    let long = ppdu(&[7; 60]);
    let air = modem.transmit(&long);
    let err = rx.try_receive(&air[..air.len() / 2]).unwrap_err();
    assert_eq!(err, WazaBeeError::Truncated);

    fr::flush().unwrap();

    // (a) The trace ring holds the typed failure. The streaming receiver
    // re-arms one bit past every failed sync hit, so the cut capture yields
    // one trace per re-armed attempt — all failed, attempt-indexed in order.
    let traces = fr::recent_traces();
    assert!(
        traces.len() >= 2,
        "one ok trace plus the failing attempts, got {}",
        traces.len()
    );
    assert!(traces[0].ok());
    assert_eq!(traces[0].attempt, Some(0), "fresh stream per try_receive");
    for (k, t) in traces[1..].iter().enumerate() {
        assert!(!t.ok());
        assert_eq!(t.attempt, Some(k as u64), "attempts indexed in order");
    }
    let failed = traces.last().unwrap();
    assert_eq!(failed.failure, Some(RxFailure::TruncatedFrame));
    assert!(failed.sync.is_some(), "failure happened after sync lock");
    // The last re-armed hits land right at the cut (the all-7s payload
    // contains `0000` symbols, which re-fire the correlator), so only
    // earlier attempts get far enough to despread anything.
    assert!(traces[1..].iter().any(|t| !t.despread_distances.is_empty()));

    // (b) The JSONL frame log links every attempt.
    let log = std::fs::read_to_string(dir.join(fr::FRAME_LOG_FILE)).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), traces.len(), "log:\n{log}");
    assert!(lines[0].contains("\"outcome\":\"ok\""), "{}", lines[0]);
    let last = lines.last().unwrap();
    assert!(last.contains("\"outcome\":\"fail\""), "{last}");
    assert!(last.contains("\"reason\":\"truncated\""), "{last}");

    // (c) The failing attempt dumped its IQ window, and the sidecar points
    // back at the trace.
    let iq_file = failed.iq_file.as_ref().expect("failure dumps IQ");
    let samples = fr::read_cf32(&dir.join(iq_file)).unwrap();
    assert_eq!(samples.len(), air.len() / 2);
    let stem = iq_file.strip_suffix(".cf32").unwrap();
    let sidecar = std::fs::read_to_string(dir.join(format!("{stem}.json"))).unwrap();
    assert!(
        sidecar.contains(&format!("\"trace_id\":{}", failed.id)),
        "{sidecar}"
    );
    assert!(sidecar.contains("\"trigger\":\"truncated\""), "{sidecar}");
    assert!(
        last.contains(&format!("\"iq_file\":\"{iq_file}\"")),
        "{last}"
    );

    // (d) The PCAP holds exactly the good frame, FCS included.
    let pcap = read_pcap(&dir.join(fr::PCAP_FILE)).unwrap();
    assert_eq!(pcap.linktype, LINKTYPE_IEEE802_15_4_WITHFCS);
    assert_eq!(pcap.packets.len(), 1);
    assert_eq!(pcap.packets[0].bytes, good.psdu());
    assert_eq!(traces[0].pcap_index, Some(0));

    cleanup(&dir);
}

/// A dumped `.cf32` window is a faithful capture: replaying it through a
/// fresh receiver decodes the very same frame.
#[test]
fn cf32_dump_redemodulates_to_same_frame() {
    let _l = lock();
    let dir = temp_dir("replay");
    fr::FlightRecorder::builder()
        .capture_dir(&dir)
        .iq_mode(IqCaptureMode::Always)
        .install()
        .unwrap();

    let p = ppdu(&[0xCA, 0xFE, 0xBA, 0xBE, 0x99]);
    let air = Dot154Modem::new(8).transmit(&p);
    let rx = ble_rx();
    let first = rx.try_receive(&air).unwrap();
    assert_eq!(first.psdu, p.psdu());

    let trace = fr::recent_traces().pop().unwrap();
    let iq_file = trace.iq_file.expect("Always mode dumps every attempt");
    let replay = fr::read_cf32(&dir.join(&iq_file)).unwrap();
    assert_eq!(replay.len(), air.len(), "window must cover the whole burst");

    fr::reset(); // second decode must not need (or touch) the recorder
    let second = rx.try_receive(&replay).unwrap();
    assert_eq!(second.psdu, p.psdu());
    assert!(second.fcs_ok());

    cleanup(&dir);
}

/// An exhausted despreading budget surfaces as the typed
/// `DespreadDistanceExceeded` failure, in the API error and in the trace.
#[test]
fn despread_budget_failure_is_typed() {
    let _l = lock();
    let dir = temp_dir("budget");
    fr::FlightRecorder::builder()
        .capture_dir(&dir)
        .install()
        .unwrap();

    use wazabee_dot154::msk::frame_chips_to_msk;
    let p = ppdu(&[5, 6, 7, 8]);
    let mut bits: Vec<u8> = (0..wazabee::tx::TX_WARMUP_BITS)
        .map(|k| (k % 2) as u8)
        .collect();
    let frame_start = bits.len();
    bits.extend(frame_chips_to_msk(&p.to_chips(), 0));
    // Flip three chips inside the first PSDU symbol (the 13th symbol: 10 SHR
    // + 2 PHR before it) — far from any codeword with a zero budget.
    for d in [10, 14, 20] {
        let i = frame_start + 12 * 32 + d;
        bits[i] ^= 1;
    }
    let air = BleModem::new(BlePhy::Le2M, 8).transmit_raw(&bits);

    let rx = ble_rx().with_max_despread_distance(0);
    let err = rx.try_receive(&air).unwrap_err();
    assert!(
        matches!(err, WazaBeeError::DespreadDistanceExceeded { max: 0, distance } if distance > 0),
        "{err:?}"
    );
    // The budget blow is the *first* committed attempt; re-armed attempts
    // behind it die their own deaths, so find the typed trace by reason.
    let traces = fr::recent_traces();
    let trace = traces
        .iter()
        .find(|t| t.failure == Some(RxFailure::DespreadDistanceExceeded))
        .expect("budget failure trace");
    assert!(trace.max_despread_distance().unwrap() > 0);

    // The same transmission decodes cleanly without the budget.
    let rx = ble_rx();
    assert_eq!(rx.try_receive(&air).unwrap().psdu, p.psdu());

    cleanup(&dir);
}

/// The NOFCS link type strips the trailing FCS from exported frames; the
/// WITHFCS link type keeps it. Both survive a write → read round trip.
#[test]
fn pcap_linktype_controls_fcs_handling() {
    let _l = lock();
    let modem = Dot154Modem::new(8);
    let p = ppdu(&[0x61, 0x88, 0x07]);

    for (linktype, strip) in [
        (LINKTYPE_IEEE802_15_4_WITHFCS, false),
        (LINKTYPE_IEEE802_15_4_NOFCS, true),
    ] {
        let dir = temp_dir(if strip { "nofcs" } else { "withfcs" });
        fr::FlightRecorder::builder()
            .capture_dir(&dir)
            .pcap_linktype(linktype)
            .install()
            .unwrap();
        let heard = ble_rx().try_receive(&modem.transmit(&p)).unwrap();
        assert_eq!(heard.psdu, p.psdu());
        fr::flush().unwrap();

        let pcap = read_pcap(&dir.join(fr::PCAP_FILE)).unwrap();
        assert_eq!(pcap.linktype, linktype);
        assert_eq!(pcap.packets.len(), 1);
        let expect = if strip {
            &p.psdu()[..p.psdu().len() - 2]
        } else {
            p.psdu()
        };
        assert_eq!(pcap.packets[0].bytes, expect);
        cleanup(&dir);
    }
}

/// Regression: the recorded CFO estimate used to average the first 8192
/// samples of the *whole* capture, so a long silent lead-in diluted the mean
/// toward zero and under-reported the offset. The estimate must window at
/// the sync sample offset instead.
#[test]
fn cfo_estimate_windows_at_sync_not_buffer_start() {
    let _l = lock();
    let dir = temp_dir("cfo");
    fr::FlightRecorder::builder()
        .capture_dir(&dir)
        .install()
        .unwrap();

    use wazabee_radio::medium::{Link, LinkConfig, RfFrame};
    // A frame long enough to fill the 8192-sample CFO window after sync.
    let p = ppdu(&[0x55; 40]);
    let tx_air = Dot154Modem::new(8).transmit(&p);
    let cfg = LinkConfig {
        snr_db: None,
        path_gain: 1.0,
        cfo_hz: 20.0e3,
        timing_offset: 0.0,
        max_lead_in: 4096,
        lead_out: 0,
    };
    let mut link = Link::new(cfg, 0); // seed 0 draws a 3957-sample lead-in
    let air = link.deliver(&RfFrame::new(2425, tx_air.clone(), 16.0e6), 2425);
    let lead_in = air.len() - tx_air.len();
    assert!(
        lead_in > 3000,
        "seed must draw a lead-in long enough to skew a buffer-start \
         window, got {lead_in}"
    );

    let heard = ble_rx().try_receive(&air).unwrap();
    assert_eq!(heard.psdu, p.psdu());
    let trace = fr::recent_traces().pop().unwrap();
    let cfo = trace.cfo_hz.expect("active trace records CFO");
    assert!(
        (cfo - 20.0e3).abs() < 2.0e3,
        "recorded CFO {cfo} Hz not within 10% of the injected 20 kHz"
    );

    cleanup(&dir);
}

/// A PHR announcing a reserved length (> 127) must surface as the typed
/// `PhrReserved` failure — flagged on the trace and counted in telemetry —
/// instead of being length-masked into a misparsed short frame.
#[test]
fn reserved_phr_sets_trace_flag_and_counter() {
    let _l = lock();
    let dir = temp_dir("phr");
    fr::FlightRecorder::builder()
        .capture_dir(&dir)
        .install()
        .unwrap();

    use wazabee_dot154::msk::frame_chips_to_msk;
    use wazabee_dot154::pn::pn_sequence;
    let mut chips: Vec<u8> = Vec::new();
    for _ in 0..8 {
        chips.extend(pn_sequence(0)); // preamble
    }
    chips.extend(pn_sequence(0x7)); // SFD low nibble
    chips.extend(pn_sequence(0xA)); // SFD high nibble
    chips.extend(pn_sequence(0x3)); // PHR low nibble
    chips.extend(pn_sequence(0x8)); // PHR high nibble -> 0x83 = 131
    for sym in [0x1, 0x4, 0x1, 0x5] {
        chips.extend(pn_sequence(sym)); // garbage "payload"
    }
    let mut bits: Vec<u8> = (0..wazabee::tx::TX_WARMUP_BITS)
        .map(|k| (k % 2) as u8)
        .collect();
    bits.extend(frame_chips_to_msk(&chips, 0));
    let air = BleModem::new(BlePhy::Le2M, 8).transmit_raw(&bits);

    let err = ble_rx().try_receive(&air).unwrap_err();
    assert_eq!(err, WazaBeeError::PhrReserved { value: 131 });

    let traces = fr::recent_traces();
    let trace = traces
        .iter()
        .find(|t| t.failure == Some(RxFailure::PhrReserved))
        .expect("typed PhrReserved trace");
    assert!(trace.phr_reserved, "trace must carry the reserved-PHR flag");

    let s = wazabee_telemetry::summary();
    assert!(s.contains("wazabee.rx.phr.reserved"), "summary:\n{s}");

    cleanup(&dir);
}

/// Per-failure-reason telemetry counters ride along with each RX attempt and
/// surface in the summary's derived section.
#[test]
fn failure_counters_reach_telemetry_summary() {
    let _l = lock();
    let mut noise = vec![wazabee_dsp::Iq::ZERO; 40_000];
    wazabee_dsp::AwgnSource::new(13, 0.7).add_to(&mut noise);
    assert_eq!(ble_rx().try_receive(&noise), Err(WazaBeeError::NoSync));

    let s = wazabee_telemetry::summary();
    assert!(s.contains("rx.fail.no_sync"), "summary:\n{s}");
    assert!(s.contains("wazabee.rx.fail.no_sync"), "summary:\n{s}");
}
