//! Shared helpers for the cross-crate integration tests.
//!
//! The vendored `serde` is a no-op shim, so every JSON artifact in this
//! workspace is hand-formatted at the producer. This module supplies the
//! consumer side: a small recursive-descent JSON parser the observability
//! tests use to round-trip snapshot and time-series output. It accepts
//! standard JSON (RFC 8259) minus escapes beyond `\" \\ / \n \r \t \uXXXX`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order is preserved as written.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, in source order; `None` for non-objects.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}, found {:?}",
            want as char,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {pos}",
            other.map(|&b| b as char)
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos} (wanted {word})"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 passes through unchanged.
                let len = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse_json(r#""a\"b\n""#).unwrap(),
            Json::Str("a\"b\n".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": "x"}, []], "c": {}}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().members().unwrap().len(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn preserves_key_order() {
        let v = parse_json(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .members()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
